//! The policy × workload conformance matrix on the deterministic sim
//! fabric: every workload (SOR, ASP, TSP, N-body, synthetic) × every
//! built-in policy (NM, FT2, AT, JUMP, LAZY, HYST, EWMA), swept under
//! perturbation seeds and checked against the threaded-fabric reference
//! (fingerprint conformance, bit-identical seed replay, protocol
//! invariants).
//!
//! Usage: `cargo run -p dsm-bench --release --bin sim_matrix [--sweep N]
//! [--seeds a,b,c] [--lossy] [--sim-workers N] [--output FILE]`
//!
//! * `--sweep N` — derive `N` seeds from the base corpus (the weekly
//!   extended sweep uses this; default 2, the reduced CI sweep).
//! * `--seeds a,b,c` — sweep exactly these seeds (replay a failure).
//! * `--lossy` — inject faults into every sim run (1% seeded per-link
//!   drops plus a partition/heal cycle, `SimConfig::lossy`); cells must
//!   conform anyway via timeouts, idempotent retries and home re-election.
//! * `--sim-workers N` — run every sim cell on `N` scheduler workers
//!   (`SimConfig::with_workers`; default 1, the sequential reference).
//!   With `N > 1` every seed is *additionally* replayed on the
//!   single-worker reference scheduler and must produce a bit-identical
//!   delivery trace and fingerprint — the parallel-scheduler determinism
//!   gate CI's `sim-parallel` job runs.
//! * `--output FILE` — write the failing-seed list (one
//!   `workload,policy,seed,reason` line each; empty file = all green), for
//!   CI artifact upload.
//!
//! Exits non-zero if any cell fails, after printing every failure.

use dsm_bench::matrix;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let value_of = |flag: &str| -> Option<&str> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };

    let seeds: Vec<u64> = match value_of("--seeds") {
        Some(list) => list
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| {
                dsm_util::parse_seed(s)
                    .unwrap_or_else(|e| panic!("--seeds entry {s:?} is invalid: {e}"))
            })
            .collect(),
        None => {
            let count: usize = value_of("--sweep").map_or(2, |s| {
                s.parse()
                    .unwrap_or_else(|e| panic!("--sweep {s:?} is invalid: {e}"))
            });
            // SplitMix-style derivation from a fixed base, so `--sweep N`
            // always names the same N schedules.
            (0..count as u64)
                .map(|i| 0x51E5_ED00u64.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
                .collect()
        }
    };
    assert!(!seeds.is_empty(), "need at least one seed");
    let lossy = args.iter().any(|a| a == "--lossy");
    let workers: usize = value_of("--sim-workers").map_or(1, |s| {
        s.parse()
            .unwrap_or_else(|e| panic!("--sim-workers {s:?} is invalid: {e}"))
    });
    assert!(workers >= 1, "--sim-workers needs at least one worker");

    eprintln!(
        "sweeping the policy x workload conformance matrix over {} seed(s){}{} ...",
        seeds.len(),
        if lossy { " under injected faults" } else { "" },
        if workers > 1 {
            format!(" on {workers} sim workers (vs the single-worker reference)")
        } else {
            String::new()
        }
    );
    let sim_config = if lossy {
        dsm_runtime::SimConfig::lossy
    } else {
        dsm_runtime::SimConfig::perturbed
    };
    let rows = matrix::conformance_with(&seeds, sim_config, workers);
    println!(
        "Conformance matrix — sim fabric{}{} vs. threaded reference, seeds {seeds:?}\n",
        if lossy {
            " (lossy: 1% drops + partition/heal)"
        } else {
            ""
        },
        if workers > 1 {
            format!(" ({workers} workers, single-worker equality checked)")
        } else {
            String::new()
        }
    );
    println!("{}", matrix::render(&rows).render());

    let mut failing_lines = Vec::new();
    for row in &rows {
        for (seed, reason) in &row.failures {
            let line = format!("{},{},{seed:#x},{reason}", row.workload, row.policy);
            eprintln!("FAIL: {line}");
            failing_lines.push(line);
        }
    }

    if let Some(path) = value_of("--output") {
        let mut contents = failing_lines.join("\n");
        if !contents.is_empty() {
            contents.push('\n');
        }
        std::fs::write(path, contents).unwrap_or_else(|e| panic!("cannot write {path:?}: {e}"));
        eprintln!("failing-seed list written to {path}");
    }

    let cells = rows.len();
    if failing_lines.is_empty() {
        println!("all {cells} cells conform ({} seed(s) each)", seeds.len());
    } else {
        println!(
            "{} failure(s) across {cells} cells — failing seeds listed above",
            failing_lines.len()
        );
        std::process::exit(1);
    }
}
