//! Figure 5 — the synthetic single-writer benchmark: (a) normalized
//! execution time and (b) normalized message breakdown (obj / mig / diff /
//! redir) for the four protocols NM, FT1, FT2 and AT against the repetition
//! `r` of the single-writer pattern.

use crate::table::{fmt_f, Table};
use crate::{cluster_on, Scale};
use dsm_apps::synthetic::{self, SyntheticParams};
use dsm_core::ProtocolConfig;
use dsm_net::MsgCategory;
use dsm_runtime::FabricMode;

/// One protocol's measurement at one repetition value.
#[derive(Debug, Clone)]
pub struct Fig5Point {
    /// Repetition of the single-writer pattern.
    pub repetition: usize,
    /// Protocol label (NM, FT1, FT2, AT).
    pub policy: String,
    /// Virtual execution time in milliseconds.
    pub time_ms: f64,
    /// `obj`: object fault-in replies without migration.
    pub obj: u64,
    /// `mig`: object fault-in replies that migrated the home.
    pub mig: u64,
    /// `diff`: diff propagations.
    pub diff: u64,
    /// `redir`: redirection replies.
    pub redir: u64,
    /// Home migrations performed.
    pub migrations: u64,
}

impl Fig5Point {
    /// Total messages in the paper's breakdown (obj + mig + diff + redir).
    pub fn breakdown_total(&self) -> u64 {
        self.obj + self.mig + self.diff + self.redir
    }
}

/// The repetitions swept by the figure (the paper uses 2, 4, 8, 16).
pub fn repetitions(_scale: Scale) -> Vec<usize> {
    vec![2, 4, 8, 16]
}

/// The protocols compared by the figure.
pub fn protocols() -> Vec<(&'static str, ProtocolConfig)> {
    vec![
        ("NM", ProtocolConfig::no_migration()),
        ("FT1", ProtocolConfig::fixed_threshold(1)),
        ("FT2", ProtocolConfig::fixed_threshold(2)),
        ("AT", ProtocolConfig::adaptive()),
    ]
}

/// Number of cluster nodes: eight workers plus the master that hosts the
/// locks and the counter's initial home, as in the paper's experiment.
pub fn nodes(scale: Scale) -> usize {
    match scale {
        Scale::Small => 5,
        Scale::Paper => 9,
    }
}

/// Run one protocol at one repetition, threaded fabric.
pub fn measure(
    repetition: usize,
    label: &str,
    protocol: ProtocolConfig,
    scale: Scale,
) -> Fig5Point {
    measure_on(repetition, label, protocol, scale, &FabricMode::Threaded)
}

/// Run one protocol at one repetition on an explicit fabric.
pub fn measure_on(
    repetition: usize,
    label: &str,
    protocol: ProtocolConfig,
    scale: Scale,
    fabric: &FabricMode,
) -> Fig5Point {
    let n = nodes(scale);
    let workers = n - 1;
    let params = match scale {
        Scale::Small => SyntheticParams {
            repetition,
            total_updates: (repetition * workers * 8) as u64,
            compute_ops: 2_000,
        },
        Scale::Paper => SyntheticParams::paper(repetition, workers),
    };
    let run = synthetic::run(cluster_on(n, protocol, fabric), &params);
    Fig5Point {
        repetition,
        policy: label.to_string(),
        time_ms: run.report.execution_time.as_millis(),
        obj: run.report.messages(MsgCategory::ObjReply),
        mig: run.report.messages(MsgCategory::ObjReplyMigrate),
        diff: run.report.messages(MsgCategory::Diff),
        redir: run.report.messages(MsgCategory::Redirect),
        migrations: run.report.migrations(),
    }
}

/// Collect the whole figure.
pub fn collect(scale: Scale) -> Vec<Fig5Point> {
    collect_on(scale, &FabricMode::Threaded)
}

/// As [`collect`], on an explicit fabric (`--fabric sim --seed N` makes
/// the reproduction replayable seed-exactly).
pub fn collect_on(scale: Scale, fabric: &FabricMode) -> Vec<Fig5Point> {
    let mut points = Vec::new();
    for repetition in repetitions(scale) {
        for (label, protocol) in protocols() {
            points.push(measure_on(repetition, label, protocol, scale, fabric));
        }
    }
    points
}

/// Render panel (a): execution times normalized to the slowest protocol at
/// each repetition, plus the raw times.
pub fn render_times(points: &[Fig5Point]) -> Table {
    let mut table = Table::new(&["repetition", "policy", "time_ms", "normalized"]);
    for repetition in points
        .iter()
        .map(|p| p.repetition)
        .collect::<std::collections::BTreeSet<_>>()
    {
        let group: Vec<&Fig5Point> = points
            .iter()
            .filter(|p| p.repetition == repetition)
            .collect();
        let max = group
            .iter()
            .map(|p| p.time_ms)
            .fold(0.0f64, f64::max)
            .max(1e-9);
        for p in &group {
            table.row(vec![
                repetition.to_string(),
                p.policy.clone(),
                fmt_f(p.time_ms),
                fmt_f(p.time_ms / max),
            ]);
        }
    }
    table
}

/// Render panel (b): the message breakdown normalized to the largest total
/// at each repetition.
pub fn render_messages(points: &[Fig5Point]) -> Table {
    let mut table = Table::new(&[
        "repetition",
        "policy",
        "obj",
        "mig",
        "diff",
        "redir",
        "total",
        "normalized",
    ]);
    for repetition in points
        .iter()
        .map(|p| p.repetition)
        .collect::<std::collections::BTreeSet<_>>()
    {
        let group: Vec<&Fig5Point> = points
            .iter()
            .filter(|p| p.repetition == repetition)
            .collect();
        let max = group
            .iter()
            .map(|p| p.breakdown_total())
            .max()
            .unwrap_or(1)
            .max(1) as f64;
        for p in &group {
            table.row(vec![
                repetition.to_string(),
                p.policy.clone(),
                p.obj.to_string(),
                p.mig.to_string(),
                p.diff.to_string(),
                p.redir.to_string(),
                p.breakdown_total().to_string(),
                fmt_f(p.breakdown_total() as f64 / max),
            ]);
        }
    }
    table
}

/// Shape checks corresponding to the paper's four observations in §5.2:
///
/// 1. at large repetition (16) FT1 and AT eliminate a large share of the
///    obj + diff messages compared with NM;
/// 2. AT matches FT1's sensitivity at large repetitions;
/// 3. fixed thresholds pay redirections at small repetitions;
/// 4. AT produces no more redirections than FT1 at small repetitions.
pub fn shape_holds(points: &[Fig5Point]) -> Vec<(String, bool)> {
    let find = |r: usize, policy: &str| {
        points
            .iter()
            .find(|p| p.repetition == r && p.policy == policy)
    };
    let mut checks = Vec::new();
    let reps: Vec<usize> = points
        .iter()
        .map(|p| p.repetition)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let large = *reps.last().unwrap_or(&16);
    let small = *reps.first().unwrap_or(&2);

    if let (Some(nm), Some(ft1), Some(at)) =
        (find(large, "NM"), find(large, "FT1"), find(large, "AT"))
    {
        let nm_pairs = nm.obj + nm.diff;
        let ft1_pairs = ft1.obj + ft1.mig + ft1.diff;
        let at_pairs = at.obj + at.mig + at.diff;
        checks.push((
            format!("r={large}: FT1 eliminates most obj+diff vs NM"),
            (ft1_pairs as f64) < 0.45 * nm_pairs as f64,
        ));
        checks.push((
            format!("r={large}: AT as sensitive as FT1 (within 25%)"),
            (at_pairs as f64) < 1.25 * ft1_pairs as f64,
        ));
    }
    if let (Some(ft1), Some(at)) = (find(small, "FT1"), find(small, "AT")) {
        checks.push((format!("r={small}: FT1 pays redirections"), ft1.redir > 0));
        checks.push((
            format!("r={small}: AT redirections <= FT1 redirections"),
            at.redir <= ft1.redir,
        ));
    }
    if let (Some(nm), Some(ft2)) = (find(2, "NM"), find(2, "FT2")) {
        checks.push((
            "r=2: FT2 prohibits home migration".to_string(),
            ft2.migrations <= nm.migrations + 1,
        ));
    }
    checks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repetitions_match_paper() {
        assert_eq!(repetitions(Scale::Small), vec![2, 4, 8, 16]);
    }

    #[test]
    fn protocols_cover_all_four_lines() {
        let labels: Vec<&str> = protocols().iter().map(|(l, _)| *l).collect();
        assert_eq!(labels, vec!["NM", "FT1", "FT2", "AT"]);
    }

    #[test]
    fn large_repetition_favours_migration() {
        let nm = measure(8, "NM", ProtocolConfig::no_migration(), Scale::Small);
        let at = measure(8, "AT", ProtocolConfig::adaptive(), Scale::Small);
        assert!(at.migrations > 0);
        assert!(
            (at.obj + at.mig + at.diff) < nm.obj + nm.diff,
            "AT should reduce fault-in + diff traffic at r=8 (AT {at:?} vs NM {nm:?})"
        );
    }

    #[test]
    fn tables_render_every_point() {
        let points = vec![
            measure(2, "NM", ProtocolConfig::no_migration(), Scale::Small),
            measure(2, "AT", ProtocolConfig::adaptive(), Scale::Small),
        ];
        assert_eq!(render_times(&points).len(), 2);
        assert_eq!(render_messages(&points).len(), 2);
    }
}
