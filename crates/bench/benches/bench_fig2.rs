//! Criterion wrapper for the Figure 2 experiment (reduced sizes): measures
//! the end-to-end cost of one HM and one NoHM run of each application on a
//! four-node cluster.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use dsm_apps::{asp, nbody, sor, tsp};
use dsm_bench::cluster;
use dsm_core::ProtocolConfig;

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for (label, protocol) in [
        ("NoHM", ProtocolConfig::no_migration()),
        ("HM", ProtocolConfig::adaptive()),
    ] {
        group.bench_function(format!("asp_32_{label}"), |b| {
            b.iter(|| asp::run(cluster(4, protocol.clone()), &asp::AspParams::small(32)))
        });
        group.bench_function(format!("sor_32_{label}"), |b| {
            b.iter(|| sor::run(cluster(4, protocol.clone()), &sor::SorParams::small(32, 2)))
        });
        group.bench_function(format!("nbody_64_{label}"), |b| {
            b.iter(|| nbody::run(cluster(4, protocol.clone()), &nbody::NbodyParams::small(64, 1)))
        });
        group.bench_function(format!("tsp_8_{label}"), |b| {
            b.iter(|| tsp::run(cluster(4, protocol.clone()), &tsp::TspParams::small(8)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
