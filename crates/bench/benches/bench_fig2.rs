//! Timing harness for the Figure 2 experiment (reduced sizes): measures the
//! end-to-end wall-clock cost of one HM and one NoHM run of each application
//! on a four-node cluster. A plain `harness = false` bench (the build
//! environment has no criterion), reporting min/mean over a fixed number of
//! iterations.

use dsm_apps::{asp, nbody, sor, tsp};
use dsm_bench::{cluster, time_bench};
use dsm_core::ProtocolConfig;

fn main() {
    println!("bench fig2 — one run per application, 4 nodes");
    for (label, protocol) in [
        ("NoHM", ProtocolConfig::no_migration()),
        ("HM", ProtocolConfig::adaptive()),
    ] {
        let p = protocol.clone();
        time_bench(&format!("asp_32_{label}"), 10, || {
            asp::run(cluster(4, p.clone()), &asp::AspParams::small(32));
        });
        let p = protocol.clone();
        time_bench(&format!("sor_32_{label}"), 10, || {
            sor::run(cluster(4, p.clone()), &sor::SorParams::small(32, 2));
        });
        let p = protocol.clone();
        time_bench(&format!("nbody_64_{label}"), 10, || {
            nbody::run(cluster(4, p.clone()), &nbody::NbodyParams::small(64, 1));
        });
        let p = protocol.clone();
        time_bench(&format!("tsp_8_{label}"), 10, || {
            tsp::run(cluster(4, p.clone()), &tsp::TspParams::small(8));
        });
    }
}
