//! Criterion wrapper for the Figure 3 experiment (reduced sizes): one AT and
//! one FT2 run of ASP and SOR at a small problem size on eight nodes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use dsm_apps::{asp, sor};
use dsm_bench::cluster;
use dsm_core::ProtocolConfig;

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for (label, protocol) in [
        ("AT", ProtocolConfig::adaptive()),
        ("FT2", ProtocolConfig::fixed_threshold(2)),
    ] {
        group.bench_function(format!("asp_32_{label}"), |b| {
            b.iter(|| asp::run(cluster(8, protocol.clone()), &asp::AspParams::small(32)))
        });
        group.bench_function(format!("sor_32_{label}"), |b| {
            b.iter(|| sor::run(cluster(8, protocol.clone()), &sor::SorParams::small(32, 2)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
