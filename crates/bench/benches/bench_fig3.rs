//! Timing harness for the Figure 3 experiment (reduced sizes): one AT and
//! one FT2 run of ASP and SOR at a small problem size on eight nodes.

use dsm_apps::{asp, sor};
use dsm_bench::{cluster, time_bench};
use dsm_core::ProtocolConfig;

fn main() {
    println!("bench fig3 — AT vs FT2, 8 nodes");
    for (label, protocol) in [
        ("AT", ProtocolConfig::adaptive()),
        ("FT2", ProtocolConfig::fixed_threshold(2)),
    ] {
        let p = protocol.clone();
        time_bench(&format!("asp_32_{label}"), 10, || {
            asp::run(cluster(8, p.clone()), &asp::AspParams::small(32));
        });
        let p = protocol.clone();
        time_bench(&format!("sor_32_{label}"), 10, || {
            sor::run(cluster(8, p.clone()), &sor::SorParams::small(32, 2));
        });
    }
}
