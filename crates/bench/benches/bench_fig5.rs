//! Criterion wrapper for the Figure 5 experiment (reduced sizes): the
//! synthetic single-writer benchmark at r = 2 and r = 16 under all four
//! protocols.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use dsm_apps::synthetic::{self, SyntheticParams};
use dsm_bench::cluster;
use dsm_core::ProtocolConfig;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for repetition in [2usize, 16] {
        for (label, protocol) in [
            ("NM", ProtocolConfig::no_migration()),
            ("FT1", ProtocolConfig::fixed_threshold(1)),
            ("FT2", ProtocolConfig::fixed_threshold(2)),
            ("AT", ProtocolConfig::adaptive()),
        ] {
            let params = SyntheticParams {
                repetition,
                total_updates: (repetition * 4 * 6) as u64,
                compute_ops: 1_000,
            };
            group.bench_function(format!("r{repetition}_{label}"), |b| {
                b.iter(|| synthetic::run(cluster(5, protocol.clone()), &params))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
