//! Timing harness for the Figure 5 experiment (reduced sizes): the synthetic
//! single-writer benchmark at r = 2 and r = 16 under all four protocols.

use dsm_apps::synthetic::{self, SyntheticParams};
use dsm_bench::{cluster, time_bench};
use dsm_core::ProtocolConfig;

fn main() {
    println!("bench fig5 — synthetic single-writer benchmark, 5 nodes");
    for repetition in [2usize, 16] {
        for (label, protocol) in [
            ("NM", ProtocolConfig::no_migration()),
            ("FT1", ProtocolConfig::fixed_threshold(1)),
            ("FT2", ProtocolConfig::fixed_threshold(2)),
            ("AT", ProtocolConfig::adaptive()),
        ] {
            let params = SyntheticParams {
                repetition,
                total_updates: (repetition * 4 * 6) as u64,
                compute_ops: 1_000,
            };
            time_bench(&format!("r{repetition}_{label}"), 10, move || {
                synthetic::run(cluster(5, protocol.clone()), &params);
            });
        }
    }
}
