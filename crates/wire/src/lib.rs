//! # dsm-wire — the binary codec for the DSM protocol messages
//!
//! `dsm-net` defines the *framing* (length-prefixed frames, magic/version
//! header, the generic [`WireCodec`] trait); `dsm-core` defines the
//! *messages*. This crate sits above both and provides [`ProtocolCodec`],
//! the concrete `WireCodec<ProtocolMsg>` the TCP fabric is instantiated
//! with. It is hand-rolled and dependency-free by design — the workspace
//! builds offline, so there is no serde; every field is written with an
//! explicit little-endian layout.
//!
//! ## Message body layout
//!
//! A payload frame's body (after the envelope header written by
//! `dsm_net::wire::encode_envelope`) starts with a one-byte **variant
//! tag**, followed by the variant's fields in declaration order:
//!
//! | primitive | layout |
//! |---|---|
//! | `ReqId`, `ObjectId`, `Version` | u64 LE |
//! | `NodeId` | u16 LE |
//! | `LockId`, `BarrierId` | u32 LE |
//! | `bool` | one byte, strictly 0 or 1 |
//! | `f64` | IEEE-754 bit pattern as u64 LE (bit-exact round-trip) |
//! | `Option<NodeId>` | one-byte flag (0 absent / 1 present) then u16 |
//! | `Vec<u8>` | u32 LE length then the bytes |
//! | `Diff` | u32 object length, u32 run count, then per run: u32 offset + length-prefixed bytes |
//! | `MigrationState` | all fields in declaration order, including both `PolicyScratch` lanes |
//!
//! Collection counts are validated against the remaining input *before*
//! any allocation, and `Diff` bodies are reconstructed through the
//! validated `Diff::from_runs` constructor, so a malformed or hostile
//! frame yields a typed [`WireError`] — never a panic, never an oversized
//! allocation, never a `Diff` violating its run-ordering invariants.
//! [`WireError`] converts into the application-facing error taxonomy via
//! `DsmError::Transport`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dsm_core::{
    DiffBatchEntry, DiffBatchResult, DiffEntryStatus, MigrationGrant, MigrationState,
    PolicyScratch, ProtocolMsg, ReqId,
};
use dsm_net::wire::{WireCodec, WireError, WireReader, WireWriter};
use dsm_objspace::diff::DiffRun;
use dsm_objspace::{BarrierId, Diff, DsmError, LockId, NodeId, ObjectId, Version};

/// Convert a wire-decoding failure into the runtime's error taxonomy.
///
/// Defined here (not in `dsm-net`) because `dsm-objspace`'s `DsmError` and
/// the framing layer meet for the first time in this crate.
pub fn transport_error(e: WireError) -> DsmError {
    DsmError::Transport {
        detail: e.to_string(),
    }
}

// Variant tags, stable on the wire. New variants append; existing tags
// never renumber (that would be a WIRE_VERSION bump instead).
const TAG_OBJECT_REQUEST: u8 = 0;
const TAG_OBJECT_REPLY: u8 = 1;
const TAG_OBJECT_REDIRECT: u8 = 2;
const TAG_DIFF_FLUSH: u8 = 3;
const TAG_DIFF_ACK: u8 = 4;
const TAG_DIFF_BATCH: u8 = 5;
const TAG_DIFF_BATCH_ACK: u8 = 6;
const TAG_DIFF_REDIRECT: u8 = 7;
const TAG_LOCK_ACQUIRE: u8 = 8;
const TAG_LOCK_GRANT: u8 = 9;
const TAG_LOCK_RELEASE: u8 = 10;
const TAG_BARRIER_ARRIVE: u8 = 11;
const TAG_BARRIER_RELEASE: u8 = 12;
const TAG_HOME_NOTIFY: u8 = 13;
const TAG_HOME_LOOKUP: u8 = 14;
const TAG_HOME_LOOKUP_REPLY: u8 = 15;
const TAG_SHUTDOWN: u8 = 16;
const TAG_LOCK_RELEASE_ACK: u8 = 17;
const TAG_HOME_ELECT: u8 = 18;
const TAG_HOME_ELECT_REPLY: u8 = 19;
const TAG_HOME_FENCE: u8 = 20;
const TAG_HOME_FENCE_ACK: u8 = 21;

fn put_node(w: &mut WireWriter, n: NodeId) {
    w.u16(n.0);
}

fn get_node(r: &mut WireReader<'_>) -> Result<NodeId, WireError> {
    Ok(NodeId(r.u16()?))
}

fn put_opt_node(w: &mut WireWriter, n: &Option<NodeId>) {
    match n {
        None => w.u8(0),
        Some(n) => {
            w.u8(1);
            w.u16(n.0);
        }
    }
}

fn get_opt_node(r: &mut WireReader<'_>) -> Result<Option<NodeId>, WireError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(NodeId(r.u16()?))),
        code => Err(WireError::UnknownTag {
            context: "option flag",
            code,
        }),
    }
}

fn put_diff(w: &mut WireWriter, diff: &Diff) {
    let object_len =
        u32::try_from(diff.object_len()).expect("object length exceeds the 4 GiB wire limit");
    w.u32(object_len);
    w.u32(u32::try_from(diff.runs().len()).expect("run count exceeds u32"));
    for run in diff.runs() {
        w.u32(run.offset);
        w.len_bytes(&run.bytes);
    }
}

/// Minimum on-wire size of one diff run: offset + length prefix + one byte
/// (runs are never empty), used to validate run counts pre-allocation.
const MIN_RUN_BYTES: usize = 4 + 4 + 1;

fn get_diff(r: &mut WireReader<'_>) -> Result<Diff, WireError> {
    let object_len = r.u32()?;
    let count = r.count(MIN_RUN_BYTES)?;
    let mut runs = Vec::with_capacity(count);
    for _ in 0..count {
        let offset = r.u32()?;
        let bytes = r.len_bytes()?.to_vec();
        runs.push(DiffRun { offset, bytes });
    }
    // Reconstruct through the validated constructor: empty, overlapping,
    // unsorted or out-of-bounds runs from the network are rejected here
    // instead of corrupting home copies later.
    Diff::from_runs(runs, object_len).ok_or(WireError::Invalid {
        context: "diff run layout",
    })
}

fn put_grant(w: &mut WireWriter, grant: &MigrationGrant) {
    let s = &grant.state;
    w.u32(s.consecutive_remote_writes);
    put_opt_node(w, &s.last_remote_writer);
    w.f64(s.threshold_base);
    w.u64(s.redirected_requests);
    w.u64(s.exclusive_home_writes);
    w.bool(s.last_write_was_home);
    w.u32(s.migrations);
    w.f64(s.mean_diff_bytes);
    w.u64(s.diff_samples);
    put_opt_node(w, &s.prev_home);
    w.f64(s.scratch.a);
    w.f64(s.scratch.b);
}

fn get_grant(r: &mut WireReader<'_>) -> Result<MigrationGrant, WireError> {
    Ok(MigrationGrant {
        state: MigrationState {
            consecutive_remote_writes: r.u32()?,
            last_remote_writer: get_opt_node(r)?,
            threshold_base: r.f64()?,
            redirected_requests: r.u64()?,
            exclusive_home_writes: r.u64()?,
            last_write_was_home: r.bool()?,
            migrations: r.u32()?,
            mean_diff_bytes: r.f64()?,
            diff_samples: r.u64()?,
            prev_home: get_opt_node(r)?,
            scratch: PolicyScratch {
                a: r.f64()?,
                b: r.f64()?,
            },
        },
    })
}

/// Minimum on-wire size of one batch entry: object id + empty diff.
const MIN_BATCH_ENTRY_BYTES: usize = 8 + 4 + 4;
/// Minimum on-wire size of one batch result: object id + status tag +
/// the smaller status body (redirect: node + epoch).
const MIN_BATCH_RESULT_BYTES: usize = 8 + 1 + 6;

fn put_status(w: &mut WireWriter, status: &DiffEntryStatus) {
    match status {
        DiffEntryStatus::Applied { version } => {
            w.u8(0);
            w.u64(version.0);
        }
        DiffEntryStatus::Redirect { new_home, epoch } => {
            w.u8(1);
            put_node(w, *new_home);
            w.u32(*epoch);
        }
    }
}

fn get_status(r: &mut WireReader<'_>) -> Result<DiffEntryStatus, WireError> {
    match r.u8()? {
        0 => Ok(DiffEntryStatus::Applied {
            version: Version(r.u64()?),
        }),
        1 => Ok(DiffEntryStatus::Redirect {
            new_home: get_node(r)?,
            epoch: r.u32()?,
        }),
        code => Err(WireError::UnknownTag {
            context: "diff entry status",
            code,
        }),
    }
}

/// The concrete binary codec for [`ProtocolMsg`] — plug it into
/// `dsm_net::tcp::TcpNodeBinding::bind::<ProtocolCodec>` (or the envelope
/// helpers in `dsm_net::wire`) to speak the DSM protocol over sockets.
pub struct ProtocolCodec;

impl WireCodec<ProtocolMsg> for ProtocolCodec {
    fn encode(msg: &ProtocolMsg, w: &mut WireWriter) {
        match msg {
            ProtocolMsg::ObjectRequest {
                req,
                obj,
                requester,
                for_write,
                redirections,
            } => {
                w.u8(TAG_OBJECT_REQUEST);
                w.u64(req.0);
                w.u64(obj.0);
                put_node(w, *requester);
                w.bool(*for_write);
                w.u32(*redirections);
            }
            ProtocolMsg::ObjectReply {
                req,
                obj,
                data,
                version,
                migration,
            } => {
                w.u8(TAG_OBJECT_REPLY);
                w.u64(req.0);
                w.u64(obj.0);
                w.len_bytes(data);
                w.u64(version.0);
                match migration {
                    None => w.u8(0),
                    Some(grant) => {
                        w.u8(1);
                        put_grant(w, grant);
                    }
                }
            }
            ProtocolMsg::ObjectRedirect {
                req,
                obj,
                new_home,
                epoch,
            } => {
                w.u8(TAG_OBJECT_REDIRECT);
                w.u64(req.0);
                w.u64(obj.0);
                put_node(w, *new_home);
                w.u32(*epoch);
            }
            ProtocolMsg::DiffFlush {
                req,
                obj,
                diff,
                from,
                redirections,
            } => {
                w.u8(TAG_DIFF_FLUSH);
                w.u64(req.0);
                w.u64(obj.0);
                put_diff(w, diff);
                put_node(w, *from);
                w.u32(*redirections);
            }
            ProtocolMsg::DiffAck { req, obj, version } => {
                w.u8(TAG_DIFF_ACK);
                w.u64(req.0);
                w.u64(obj.0);
                w.u64(version.0);
            }
            ProtocolMsg::DiffBatch { req, entries, from } => {
                w.u8(TAG_DIFF_BATCH);
                w.u64(req.0);
                w.u32(u32::try_from(entries.len()).expect("batch length exceeds u32"));
                for entry in entries {
                    w.u64(entry.obj.0);
                    put_diff(w, &entry.diff);
                }
                put_node(w, *from);
            }
            ProtocolMsg::DiffBatchAck { req, results } => {
                w.u8(TAG_DIFF_BATCH_ACK);
                w.u64(req.0);
                w.u32(u32::try_from(results.len()).expect("result count exceeds u32"));
                for result in results {
                    w.u64(result.obj.0);
                    put_status(w, &result.status);
                }
            }
            ProtocolMsg::DiffRedirect {
                req,
                obj,
                new_home,
                epoch,
            } => {
                w.u8(TAG_DIFF_REDIRECT);
                w.u64(req.0);
                w.u64(obj.0);
                put_node(w, *new_home);
                w.u32(*epoch);
            }
            ProtocolMsg::LockAcquire {
                req,
                lock,
                requester,
            } => {
                w.u8(TAG_LOCK_ACQUIRE);
                w.u64(req.0);
                w.u32(lock.0);
                put_node(w, *requester);
            }
            ProtocolMsg::LockGrant { req, lock } => {
                w.u8(TAG_LOCK_GRANT);
                w.u64(req.0);
                w.u32(lock.0);
            }
            ProtocolMsg::LockRelease { lock, holder, req } => {
                w.u8(TAG_LOCK_RELEASE);
                w.u32(lock.0);
                put_node(w, *holder);
                w.u64(req.0);
            }
            ProtocolMsg::LockReleaseAck { req, lock } => {
                w.u8(TAG_LOCK_RELEASE_ACK);
                w.u64(req.0);
                w.u32(lock.0);
            }
            ProtocolMsg::BarrierArrive {
                req,
                barrier,
                node,
                epoch,
            } => {
                w.u8(TAG_BARRIER_ARRIVE);
                w.u64(req.0);
                w.u32(barrier.0);
                put_node(w, *node);
                w.u64(*epoch);
            }
            ProtocolMsg::BarrierRelease {
                req,
                barrier,
                epoch,
            } => {
                w.u8(TAG_BARRIER_RELEASE);
                w.u64(req.0);
                w.u32(barrier.0);
                w.u64(*epoch);
            }
            ProtocolMsg::HomeNotify {
                obj,
                new_home,
                epoch,
            } => {
                w.u8(TAG_HOME_NOTIFY);
                w.u64(obj.0);
                put_node(w, *new_home);
                w.u32(*epoch);
            }
            ProtocolMsg::HomeLookup { req, obj } => {
                w.u8(TAG_HOME_LOOKUP);
                w.u64(req.0);
                w.u64(obj.0);
            }
            ProtocolMsg::HomeLookupReply { req, obj, home } => {
                w.u8(TAG_HOME_LOOKUP_REPLY);
                w.u64(req.0);
                w.u64(obj.0);
                put_node(w, *home);
            }
            ProtocolMsg::HomeElect {
                req,
                obj,
                suspect,
                candidate,
                epoch,
                has_copy,
            } => {
                w.u8(TAG_HOME_ELECT);
                w.u64(req.0);
                w.u64(obj.0);
                put_node(w, *suspect);
                put_node(w, *candidate);
                w.u32(*epoch);
                w.bool(*has_copy);
            }
            ProtocolMsg::HomeElectReply {
                req,
                obj,
                home,
                epoch,
            } => {
                w.u8(TAG_HOME_ELECT_REPLY);
                w.u64(req.0);
                w.u64(obj.0);
                put_node(w, *home);
                w.u32(*epoch);
            }
            ProtocolMsg::HomeFence {
                req,
                obj,
                new_home,
                epoch,
            } => {
                w.u8(TAG_HOME_FENCE);
                w.u64(req.0);
                w.u64(obj.0);
                put_node(w, *new_home);
                w.u32(*epoch);
            }
            ProtocolMsg::HomeFenceAck { req, obj } => {
                w.u8(TAG_HOME_FENCE_ACK);
                w.u64(req.0);
                w.u64(obj.0);
            }
            ProtocolMsg::Shutdown => {
                w.u8(TAG_SHUTDOWN);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<ProtocolMsg, WireError> {
        let tag = r.u8()?;
        match tag {
            TAG_OBJECT_REQUEST => Ok(ProtocolMsg::ObjectRequest {
                req: ReqId(r.u64()?),
                obj: ObjectId(r.u64()?),
                requester: get_node(r)?,
                for_write: r.bool()?,
                redirections: r.u32()?,
            }),
            TAG_OBJECT_REPLY => Ok(ProtocolMsg::ObjectReply {
                req: ReqId(r.u64()?),
                obj: ObjectId(r.u64()?),
                data: r.len_bytes()?.to_vec(),
                version: Version(r.u64()?),
                migration: match r.u8()? {
                    0 => None,
                    1 => Some(get_grant(r)?),
                    code => {
                        return Err(WireError::UnknownTag {
                            context: "migration flag",
                            code,
                        })
                    }
                },
            }),
            TAG_OBJECT_REDIRECT => Ok(ProtocolMsg::ObjectRedirect {
                req: ReqId(r.u64()?),
                obj: ObjectId(r.u64()?),
                new_home: get_node(r)?,
                epoch: r.u32()?,
            }),
            TAG_DIFF_FLUSH => Ok(ProtocolMsg::DiffFlush {
                req: ReqId(r.u64()?),
                obj: ObjectId(r.u64()?),
                diff: get_diff(r)?,
                from: get_node(r)?,
                redirections: r.u32()?,
            }),
            TAG_DIFF_ACK => Ok(ProtocolMsg::DiffAck {
                req: ReqId(r.u64()?),
                obj: ObjectId(r.u64()?),
                version: Version(r.u64()?),
            }),
            TAG_DIFF_BATCH => {
                let req = ReqId(r.u64()?);
                let count = r.count(MIN_BATCH_ENTRY_BYTES)?;
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    entries.push(DiffBatchEntry {
                        obj: ObjectId(r.u64()?),
                        diff: get_diff(r)?,
                    });
                }
                Ok(ProtocolMsg::DiffBatch {
                    req,
                    entries,
                    from: get_node(r)?,
                })
            }
            TAG_DIFF_BATCH_ACK => {
                let req = ReqId(r.u64()?);
                let count = r.count(MIN_BATCH_RESULT_BYTES)?;
                let mut results = Vec::with_capacity(count);
                for _ in 0..count {
                    results.push(DiffBatchResult {
                        obj: ObjectId(r.u64()?),
                        status: get_status(r)?,
                    });
                }
                Ok(ProtocolMsg::DiffBatchAck { req, results })
            }
            TAG_DIFF_REDIRECT => Ok(ProtocolMsg::DiffRedirect {
                req: ReqId(r.u64()?),
                obj: ObjectId(r.u64()?),
                new_home: get_node(r)?,
                epoch: r.u32()?,
            }),
            TAG_LOCK_ACQUIRE => Ok(ProtocolMsg::LockAcquire {
                req: ReqId(r.u64()?),
                lock: LockId(r.u32()?),
                requester: get_node(r)?,
            }),
            TAG_LOCK_GRANT => Ok(ProtocolMsg::LockGrant {
                req: ReqId(r.u64()?),
                lock: LockId(r.u32()?),
            }),
            TAG_LOCK_RELEASE => Ok(ProtocolMsg::LockRelease {
                lock: LockId(r.u32()?),
                holder: get_node(r)?,
                req: ReqId(r.u64()?),
            }),
            TAG_LOCK_RELEASE_ACK => Ok(ProtocolMsg::LockReleaseAck {
                req: ReqId(r.u64()?),
                lock: LockId(r.u32()?),
            }),
            TAG_BARRIER_ARRIVE => Ok(ProtocolMsg::BarrierArrive {
                req: ReqId(r.u64()?),
                barrier: BarrierId(r.u32()?),
                node: get_node(r)?,
                epoch: r.u64()?,
            }),
            TAG_BARRIER_RELEASE => Ok(ProtocolMsg::BarrierRelease {
                req: ReqId(r.u64()?),
                barrier: BarrierId(r.u32()?),
                epoch: r.u64()?,
            }),
            TAG_HOME_NOTIFY => Ok(ProtocolMsg::HomeNotify {
                obj: ObjectId(r.u64()?),
                new_home: get_node(r)?,
                epoch: r.u32()?,
            }),
            TAG_HOME_LOOKUP => Ok(ProtocolMsg::HomeLookup {
                req: ReqId(r.u64()?),
                obj: ObjectId(r.u64()?),
            }),
            TAG_HOME_LOOKUP_REPLY => Ok(ProtocolMsg::HomeLookupReply {
                req: ReqId(r.u64()?),
                obj: ObjectId(r.u64()?),
                home: get_node(r)?,
            }),
            TAG_HOME_ELECT => Ok(ProtocolMsg::HomeElect {
                req: ReqId(r.u64()?),
                obj: ObjectId(r.u64()?),
                suspect: get_node(r)?,
                candidate: get_node(r)?,
                epoch: r.u32()?,
                has_copy: r.bool()?,
            }),
            TAG_HOME_ELECT_REPLY => Ok(ProtocolMsg::HomeElectReply {
                req: ReqId(r.u64()?),
                obj: ObjectId(r.u64()?),
                home: get_node(r)?,
                epoch: r.u32()?,
            }),
            TAG_HOME_FENCE => Ok(ProtocolMsg::HomeFence {
                req: ReqId(r.u64()?),
                obj: ObjectId(r.u64()?),
                new_home: get_node(r)?,
                epoch: r.u32()?,
            }),
            TAG_HOME_FENCE_ACK => Ok(ProtocolMsg::HomeFenceAck {
                req: ReqId(r.u64()?),
                obj: ObjectId(r.u64()?),
            }),
            TAG_SHUTDOWN => Ok(ProtocolMsg::Shutdown),
            code => Err(WireError::UnknownTag {
                context: "protocol message",
                code,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_model::SimTime;
    use dsm_net::wire::{decode_envelope, decode_frame, encode_envelope, FrameKind};
    use dsm_net::Envelope;
    use dsm_util::SmallRng;

    fn sample_diff() -> Diff {
        Diff::from_runs(
            vec![
                DiffRun {
                    offset: 0,
                    bytes: vec![1, 2, 3, 4],
                },
                DiffRun {
                    offset: 12,
                    bytes: vec![9],
                },
            ],
            64,
        )
        .expect("valid runs")
    }

    fn sample_grant() -> MigrationGrant {
        MigrationGrant {
            state: MigrationState {
                consecutive_remote_writes: 3,
                last_remote_writer: Some(NodeId(2)),
                threshold_base: 2.75,
                redirected_requests: 17,
                exclusive_home_writes: 5,
                last_write_was_home: true,
                migrations: 4,
                mean_diff_bytes: 129.5,
                diff_samples: 11,
                prev_home: Some(NodeId(1)),
                scratch: PolicyScratch { a: -0.25, b: 1e-9 },
            },
        }
    }

    /// One instance of every `ProtocolMsg` variant, with every optional
    /// field exercised in both directions across the set.
    fn every_variant() -> Vec<ProtocolMsg> {
        vec![
            ProtocolMsg::ObjectRequest {
                req: ReqId(1),
                obj: ObjectId(100),
                requester: NodeId(3),
                for_write: true,
                redirections: 2,
            },
            ProtocolMsg::ObjectReply {
                req: ReqId(2),
                obj: ObjectId(101),
                data: vec![0xAB; 37],
                version: Version(9),
                migration: None,
            },
            // The migration grant carries the full MigrationState,
            // including the PolicyScratch lanes — the acceptance bar calls
            // this out explicitly.
            ProtocolMsg::ObjectReply {
                req: ReqId(3),
                obj: ObjectId(102),
                data: Vec::new(),
                version: Version(10),
                migration: Some(sample_grant()),
            },
            ProtocolMsg::ObjectRedirect {
                req: ReqId(4),
                obj: ObjectId(103),
                new_home: NodeId(1),
                epoch: 6,
            },
            ProtocolMsg::DiffFlush {
                req: ReqId(5),
                obj: ObjectId(104),
                diff: sample_diff(),
                from: NodeId(2),
                redirections: 1,
            },
            ProtocolMsg::DiffAck {
                req: ReqId(6),
                obj: ObjectId(105),
                version: Version(11),
            },
            ProtocolMsg::DiffBatch {
                req: ReqId(7),
                entries: vec![
                    DiffBatchEntry {
                        obj: ObjectId(106),
                        diff: sample_diff(),
                    },
                    DiffBatchEntry {
                        obj: ObjectId(107),
                        diff: Diff::from_runs(Vec::new(), 16).expect("empty diff"),
                    },
                ],
                from: NodeId(0),
            },
            ProtocolMsg::DiffBatchAck {
                req: ReqId(8),
                results: vec![
                    DiffBatchResult {
                        obj: ObjectId(106),
                        status: DiffEntryStatus::Applied {
                            version: Version(12),
                        },
                    },
                    DiffBatchResult {
                        obj: ObjectId(107),
                        status: DiffEntryStatus::Redirect {
                            new_home: NodeId(3),
                            epoch: 2,
                        },
                    },
                ],
            },
            ProtocolMsg::DiffRedirect {
                req: ReqId(9),
                obj: ObjectId(108),
                new_home: NodeId(2),
                epoch: 7,
            },
            ProtocolMsg::LockAcquire {
                req: ReqId(10),
                lock: LockId(40),
                requester: NodeId(1),
            },
            ProtocolMsg::LockGrant {
                req: ReqId(11),
                lock: LockId(41),
            },
            ProtocolMsg::LockRelease {
                lock: LockId(42),
                holder: NodeId(2),
                req: ReqId(16),
            },
            // The legacy fire-and-forget release: ReqId(0) means "no ack
            // expected" and must round-trip unchanged.
            ProtocolMsg::LockRelease {
                lock: LockId(43),
                holder: NodeId(3),
                req: ReqId(0),
            },
            ProtocolMsg::LockReleaseAck {
                req: ReqId(16),
                lock: LockId(42),
            },
            ProtocolMsg::BarrierArrive {
                req: ReqId(12),
                barrier: BarrierId(50),
                node: NodeId(3),
                epoch: 1_000,
            },
            ProtocolMsg::BarrierRelease {
                req: ReqId(13),
                barrier: BarrierId(51),
                epoch: 1_001,
            },
            ProtocolMsg::HomeNotify {
                obj: ObjectId(109),
                new_home: NodeId(0),
                epoch: 8,
            },
            ProtocolMsg::HomeLookup {
                req: ReqId(14),
                obj: ObjectId(110),
            },
            ProtocolMsg::HomeLookupReply {
                req: ReqId(15),
                obj: ObjectId(111),
                home: NodeId(1),
            },
            ProtocolMsg::HomeElect {
                req: ReqId(17),
                obj: ObjectId(112),
                suspect: NodeId(1),
                candidate: NodeId(2),
                epoch: 3,
                has_copy: true,
            },
            ProtocolMsg::HomeElectReply {
                req: ReqId(17),
                obj: ObjectId(112),
                home: NodeId(2),
                epoch: 65_539,
            },
            ProtocolMsg::HomeFence {
                req: ReqId(18),
                obj: ObjectId(112),
                new_home: NodeId(2),
                epoch: 65_539,
            },
            ProtocolMsg::HomeFenceAck {
                req: ReqId(18),
                obj: ObjectId(112),
            },
            ProtocolMsg::Shutdown,
        ]
    }

    fn envelope_for(msg: ProtocolMsg, idx: u64) -> Envelope<ProtocolMsg> {
        Envelope {
            src: NodeId(1),
            dst: NodeId(2),
            category: msg.category(),
            wire_bytes: msg.payload_bytes() + 32,
            sent_at: SimTime::from_nanos(idx * 1_000),
            arrival: SimTime::from_nanos(idx * 1_000 + 42),
            payload: msg,
        }
    }

    #[test]
    fn every_variant_round_trips_byte_exactly() {
        let variants = every_variant();
        assert_eq!(
            variants.len(),
            24,
            "one instance per variant plus the grant and legacy-release cases"
        );
        for (i, msg) in variants.into_iter().enumerate() {
            let env = envelope_for(msg, i as u64);
            let frame = encode_envelope::<ProtocolMsg, ProtocolCodec>(&env);
            let (kind, body) = decode_frame(&frame[4..]).expect("valid frame");
            assert_eq!(kind, FrameKind::Payload);
            let back = decode_envelope::<ProtocolMsg, ProtocolCodec>(body).expect("decodes");
            assert_eq!(back, env);
            // Byte-exact: re-encoding the decoded envelope reproduces the
            // original frame bit for bit.
            let again = encode_envelope::<ProtocolMsg, ProtocolCodec>(&back);
            assert_eq!(again, frame);
        }
    }

    #[test]
    fn scratch_round_trip_is_bit_exact_for_odd_floats() {
        for a in [
            f64::INFINITY,
            f64::NEG_INFINITY,
            -0.0,
            f64::MIN_POSITIVE,
            f64::NAN,
        ] {
            let mut grant = sample_grant();
            grant.state.scratch.a = a;
            let mut w = WireWriter::new();
            put_grant(&mut w, &grant);
            let bytes = w.into_vec();
            let mut r = WireReader::new(&bytes);
            let back = get_grant(&mut r).expect("decodes");
            r.finish().expect("consumed exactly");
            assert_eq!(back.state.scratch.a.to_bits(), a.to_bits());
        }
    }

    #[test]
    fn unknown_variant_and_flag_tags_are_typed_errors() {
        let mut r = WireReader::new(&[200]);
        assert!(matches!(
            ProtocolCodec::decode(&mut r),
            Err(WireError::UnknownTag {
                context: "protocol message",
                code: 200
            })
        ));
        // A corrupt migration-present flag.
        let mut w = WireWriter::new();
        w.u8(TAG_OBJECT_REPLY);
        w.u64(1);
        w.u64(2);
        w.len_bytes(&[]);
        w.u64(3);
        w.u8(9); // invalid Option flag
        let bytes = w.into_vec();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            ProtocolCodec::decode(&mut r),
            Err(WireError::UnknownTag {
                context: "migration flag",
                code: 9
            })
        ));
    }

    #[test]
    fn malformed_diff_runs_are_rejected_not_installed() {
        // Overlapping runs: offsets 0..4 and 2..3.
        let mut w = WireWriter::new();
        w.u8(TAG_DIFF_FLUSH);
        w.u64(1); // req
        w.u64(2); // obj
        w.u32(64); // object_len
        w.u32(2); // run count
        w.u32(0);
        w.len_bytes(&[1, 2, 3, 4]);
        w.u32(2);
        w.len_bytes(&[9]);
        w.u16(0); // from
        w.u32(0); // redirections
        let bytes = w.into_vec();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            ProtocolCodec::decode(&mut r),
            Err(WireError::Invalid {
                context: "diff run layout"
            })
        ));
    }

    #[test]
    fn oversized_counts_fail_before_allocation() {
        // A DiffBatch claiming u32::MAX entries with almost no input.
        let mut w = WireWriter::new();
        w.u8(TAG_DIFF_BATCH);
        w.u64(1);
        w.u32(u32::MAX);
        let bytes = w.into_vec();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            ProtocolCodec::decode(&mut r),
            Err(WireError::Oversized { .. })
        ));
    }

    #[test]
    fn wire_errors_map_into_the_dsm_error_taxonomy() {
        let err = transport_error(WireError::BadMagic { found: 7 });
        match &err {
            DsmError::Transport { detail } => assert!(detail.contains("magic")),
            other => panic!("expected Transport, got {other:?}"),
        }
        assert!(err.to_string().contains("transport error"));
    }

    /// Seeded fuzz: random byte mutations and truncations of valid frames
    /// must always produce a typed error or a (possibly different) valid
    /// message — never a panic, never an oversized allocation.
    #[test]
    fn seeded_mutation_fuzz_never_panics() {
        let seeds: Vec<u64> = match std::env::var("DSM_SEEDS") {
            Ok(raw) => raw
                .split([',', ' '])
                .filter(|p| !p.trim().is_empty())
                .map(|p| dsm_util::parse_seed(p).expect("valid DSM_SEEDS entry"))
                .collect(),
            Err(_) => vec![0x51E5_ED01, 0x51E5_ED02, 0x51E5_ED03],
        };
        let variants = every_variant();
        for seed in seeds {
            let mut rng = SmallRng::seed_from_u64(seed);
            for round in 0..2_000 {
                let msg = variants[rng.gen_index(variants.len())].clone();
                let env = envelope_for(msg, round);
                let mut frame = encode_envelope::<ProtocolMsg, ProtocolCodec>(&env);
                // Mutate 1..=8 bytes anywhere in the frame (header included),
                // then sometimes truncate.
                for _ in 0..rng.gen_range_u32(1, 9) {
                    let pos = rng.gen_index(frame.len());
                    frame[pos] ^= (rng.next_u64() & 0xFF) as u8;
                }
                if rng.gen_index(4) == 0 {
                    frame.truncate(rng.gen_index(frame.len() + 1));
                }
                // Decode exactly as the socket reader does: length prefix,
                // bounds check, frame header, body.
                if frame.len() < 4 {
                    continue;
                }
                let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
                let body = &frame[4..];
                if len != body.len() {
                    // The reader would block for more bytes or reject the
                    // length bound; either way no decode happens.
                    continue;
                }
                if let Ok((FrameKind::Payload, payload)) = decode_frame(body) {
                    // Must return: Ok (mutation hit a don't-care byte or
                    // produced another valid message) or a typed error.
                    let _ = decode_envelope::<ProtocolMsg, ProtocolCodec>(payload);
                }
            }
        }
    }

    #[test]
    fn truncation_at_every_boundary_is_a_typed_error() {
        let env = envelope_for(
            ProtocolMsg::ObjectReply {
                req: ReqId(3),
                obj: ObjectId(102),
                data: vec![1, 2, 3],
                version: Version(10),
                migration: Some(sample_grant()),
            },
            0,
        );
        let frame = encode_envelope::<ProtocolMsg, ProtocolCodec>(&env);
        let (_, body) = decode_frame(&frame[4..]).expect("valid frame");
        for cut in 0..body.len() {
            let err = decode_envelope::<ProtocolMsg, ProtocolCodec>(&body[..cut])
                .expect_err("every strict prefix must fail to decode");
            // Anything typed is fine; just prove it renders.
            assert!(!err.to_string().is_empty());
        }
    }
}
