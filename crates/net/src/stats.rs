//! Message and traffic statistics.
//!
//! These counters are the raw material of the paper's evaluation: number of
//! messages (Figure 3, Figure 5(b)) and network traffic in bytes (Figure 3),
//! broken down per category and per sending node.

use crate::category::MsgCategory;
use dsm_objspace::NodeId;
use dsm_util::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Count and byte volume for one message category.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CategoryStats {
    /// Number of messages sent.
    pub count: u64,
    /// Total bytes sent (wire size, including the modelled header).
    pub bytes: u64,
}

impl CategoryStats {
    /// Accumulate one message of `bytes` bytes.
    pub fn record(&mut self, bytes: u64) {
        self.count += 1;
        self.bytes += bytes;
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &CategoryStats) {
        self.count += other.count;
        self.bytes += other.bytes;
    }
}

/// Aggregated network statistics for a run (or one node of a run).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetworkStats {
    per_category: BTreeMap<MsgCategory, CategoryStats>,
    per_node: BTreeMap<u16, CategoryStats>,
}

impl NetworkStats {
    /// An empty statistics record.
    pub fn new() -> Self {
        NetworkStats::default()
    }

    /// Record one message.
    pub fn record(&mut self, src: NodeId, category: MsgCategory, bytes: u64) {
        self.per_category.entry(category).or_default().record(bytes);
        self.per_node.entry(src.0).or_default().record(bytes);
    }

    /// Statistics for one category.
    pub fn category(&self, category: MsgCategory) -> CategoryStats {
        self.per_category
            .get(&category)
            .copied()
            .unwrap_or_default()
    }

    /// Statistics for one sending node.
    pub fn node(&self, node: NodeId) -> CategoryStats {
        self.per_node.get(&node.0).copied().unwrap_or_default()
    }

    /// Total message count across all categories.
    pub fn total_messages(&self) -> u64 {
        self.per_category.values().map(|c| c.count).sum()
    }

    /// Total bytes across all categories (the "network traffic" series).
    pub fn total_bytes(&self) -> u64 {
        self.per_category.values().map(|c| c.bytes).sum()
    }

    /// Message count restricted to the paper's Figure 5(b) breakdown
    /// categories (object fault-ins, migrating fault-ins, diffs,
    /// redirections) — synchronization excluded.
    pub fn breakdown_messages(&self) -> u64 {
        self.per_category
            .iter()
            .filter(|(c, _)| c.in_breakdown())
            .map(|(_, s)| s.count)
            .sum()
    }

    /// Message count for diff propagation (single `Diff` flushes plus
    /// `DiffBatch` messages — a batch counts as **one** message however many
    /// entries it carries). This is the series release-time flush batching
    /// shrinks.
    pub fn diff_propagation_messages(&self) -> u64 {
        self.per_category
            .iter()
            .filter(|(c, _)| c.is_diff_propagation())
            .map(|(_, s)| s.count)
            .sum()
    }

    /// Message count for synchronization categories only.
    pub fn synchronization_messages(&self) -> u64 {
        self.per_category
            .iter()
            .filter(|(c, _)| c.is_synchronization())
            .map(|(_, s)| s.count)
            .sum()
    }

    /// Merge another record (e.g. from another node) into this one.
    pub fn merge(&mut self, other: &NetworkStats) {
        for (cat, stats) in &other.per_category {
            self.per_category.entry(*cat).or_default().merge(stats);
        }
        for (node, stats) in &other.per_node {
            self.per_node.entry(*node).or_default().merge(stats);
        }
    }

    /// Iterate categories with non-zero traffic in stable order.
    pub fn categories(&self) -> impl Iterator<Item = (MsgCategory, CategoryStats)> + '_ {
        self.per_category.iter().map(|(c, s)| (*c, *s))
    }
}

/// A thread-safe statistics collector shared by all endpoints of a fabric.
#[derive(Debug, Clone, Default)]
pub struct StatsCollector {
    inner: Arc<Mutex<NetworkStats>>,
}

impl StatsCollector {
    /// Create an empty collector.
    pub fn new() -> Self {
        StatsCollector::default()
    }

    /// Record one message.
    pub fn record(&self, src: NodeId, category: MsgCategory, bytes: u64) {
        self.inner.lock().record(src, category, bytes);
    }

    /// Snapshot the current statistics.
    pub fn snapshot(&self) -> NetworkStats {
        self.inner.lock().clone()
    }

    /// Reset all counters (used between experiment phases so warm-up is not
    /// measured).
    pub fn reset(&self) {
        *self.inner.lock() = NetworkStats::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_counts_and_bytes() {
        let mut s = NetworkStats::new();
        s.record(NodeId(0), MsgCategory::ObjReply, 100);
        s.record(NodeId(0), MsgCategory::ObjReply, 50);
        s.record(NodeId(1), MsgCategory::Diff, 10);
        assert_eq!(s.category(MsgCategory::ObjReply).count, 2);
        assert_eq!(s.category(MsgCategory::ObjReply).bytes, 150);
        assert_eq!(s.category(MsgCategory::Diff).count, 1);
        assert_eq!(s.node(NodeId(0)).count, 2);
        assert_eq!(s.node(NodeId(1)).bytes, 10);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.total_bytes(), 160);
    }

    #[test]
    fn unknown_category_is_zero() {
        let s = NetworkStats::new();
        assert_eq!(s.category(MsgCategory::Redirect), CategoryStats::default());
        assert_eq!(s.node(NodeId(7)), CategoryStats::default());
    }

    #[test]
    fn breakdown_excludes_synchronization() {
        let mut s = NetworkStats::new();
        s.record(NodeId(0), MsgCategory::ObjReply, 1);
        s.record(NodeId(0), MsgCategory::ObjReplyMigrate, 1);
        s.record(NodeId(0), MsgCategory::Diff, 1);
        s.record(NodeId(0), MsgCategory::Redirect, 1);
        s.record(NodeId(0), MsgCategory::LockAcquire, 1);
        s.record(NodeId(0), MsgCategory::LockGrant, 1);
        s.record(NodeId(0), MsgCategory::DiffAck, 1);
        assert_eq!(s.breakdown_messages(), 4);
        assert_eq!(s.synchronization_messages(), 2);
        assert_eq!(s.total_messages(), 7);
    }

    #[test]
    fn diff_batch_counts_one_message_with_summed_bytes() {
        // Double-counting guard: a `DiffBatch` of k entries crosses the
        // fabric exactly once, so the statistics must show ONE message in
        // the `DiffBatch` category whose bytes are the *sum* of the batched
        // diffs' wire sizes (plus the per-entry and fixed headers the fabric
        // adds) — never k messages. The fabric records per envelope, so one
        // `record` call is precisely what a batch generates.
        let entry_wire_bytes = [100u64, 40, 260];
        let summed: u64 = entry_wire_bytes.iter().sum();
        let mut s = NetworkStats::new();
        s.record(NodeId(2), MsgCategory::DiffBatch, summed);
        assert_eq!(s.category(MsgCategory::DiffBatch).count, 1);
        assert_eq!(s.category(MsgCategory::DiffBatch).bytes, summed);
        // The batch shows up in the diff-propagation and breakdown series
        // once, not once per entry.
        assert_eq!(s.diff_propagation_messages(), 1);
        assert_eq!(s.breakdown_messages(), 1);
        assert_eq!(s.total_messages(), 1);
        // Contrast with k unbatched flushes: k messages, same payload sum.
        let mut unbatched = NetworkStats::new();
        for bytes in entry_wire_bytes {
            unbatched.record(NodeId(2), MsgCategory::Diff, bytes);
        }
        assert_eq!(unbatched.diff_propagation_messages(), 3);
        assert_eq!(unbatched.category(MsgCategory::Diff).bytes, summed);
    }

    #[test]
    fn merge_combines_records() {
        let mut a = NetworkStats::new();
        a.record(NodeId(0), MsgCategory::Diff, 10);
        let mut b = NetworkStats::new();
        b.record(NodeId(1), MsgCategory::Diff, 20);
        b.record(NodeId(1), MsgCategory::Redirect, 5);
        a.merge(&b);
        assert_eq!(a.category(MsgCategory::Diff).count, 2);
        assert_eq!(a.category(MsgCategory::Diff).bytes, 30);
        assert_eq!(a.category(MsgCategory::Redirect).count, 1);
        assert_eq!(a.node(NodeId(1)).count, 2);
    }

    #[test]
    fn collector_is_shared_and_resettable() {
        let c = StatsCollector::new();
        let c2 = c.clone();
        c.record(NodeId(0), MsgCategory::Control, 8);
        c2.record(NodeId(1), MsgCategory::Control, 8);
        assert_eq!(c.snapshot().total_messages(), 2);
        c.reset();
        assert_eq!(c2.snapshot().total_messages(), 0);
    }

    #[test]
    fn categories_iterates_in_stable_order() {
        let mut s = NetworkStats::new();
        s.record(NodeId(0), MsgCategory::Redirect, 1);
        s.record(NodeId(0), MsgCategory::ObjReply, 1);
        let cats: Vec<MsgCategory> = s.categories().map(|(c, _)| c).collect();
        assert_eq!(cats.len(), 2);
        let mut sorted = cats.clone();
        sorted.sort();
        assert_eq!(cats, sorted);
    }
}
