//! Cluster membership and heartbeat liveness for the TCP fabric.
//!
//! The membership layer is deliberately small: the node registry is
//! exchanged once at join time (every node knows every peer's address
//! before the run starts), and from then on each node's fabric sends
//! periodic heartbeat frames on every outgoing link. The receiving side
//! tracks, per peer, when it last heard *anything* — payload frames count
//! as liveness signals too, so a chatty link never goes suspect just
//! because heartbeats queue behind large payloads.
//!
//! The design follows the heartbeat-controller style of placement
//! services (RobustMQ's placement center is the model named in the
//! roadmap): a pure, clock-injected tracker classifies each peer as
//! [`PeerLiveness::Alive`], `Suspect` (quiet past `suspect_after`) or
//! `Dead` (quiet past `dead_after`). A *suspect* peer that resumes
//! talking recovers to `Alive` (counted in [`PeerStatus::recoveries`]),
//! but **death is sticky**: once a peer's silence crosses `dead_after`,
//! resumed frames on the old connection do not revive it. A declared-dead
//! peer may have been deposed in its absence (the sim fabric's home
//! re-election is exactly that), so a process that merely went quiet and
//! came back must not resurrect silently with its stale state. The only
//! way back in is an explicit **incarnation-fenced rejoin**
//! ([`LivenessTracker::record_rejoin`], driven by the hello handshake's
//! incarnation number): a hello carrying a *strictly greater* incarnation
//! proves a deliberate restart and clears the latch; a replayed or stale
//! hello at the old incarnation is refused and the peer stays dead.
//!
//! All timestamps are plain `u64` milliseconds injected by the caller,
//! which keeps every transition unit-testable without real sleeping.

use dsm_objspace::NodeId;
use std::fmt;

/// Liveness classification of one peer, derived from how long ago it was
/// last heard from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerLiveness {
    /// Heard from within the suspect threshold.
    Alive,
    /// Quiet for longer than `suspect_after` but not yet `dead_after`.
    Suspect,
    /// Quiet for longer than `dead_after`.
    Dead,
}

impl fmt::Display for PeerLiveness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PeerLiveness::Alive => "alive",
            PeerLiveness::Suspect => "suspect",
            PeerLiveness::Dead => "dead",
        })
    }
}

/// One peer's row in a liveness view.
#[derive(Debug, Clone, PartialEq)]
pub struct PeerStatus {
    /// The peer node.
    pub node: NodeId,
    /// Current classification.
    pub liveness: PeerLiveness,
    /// Heartbeat frames received from this peer.
    pub heartbeats: u64,
    /// Total frames (heartbeat + payload + control) received from this peer.
    pub frames: u64,
    /// Milliseconds since the peer was last heard from (at view time).
    pub silent_ms: u64,
    /// Times the peer came back to `Alive` after being suspect or dead.
    pub recoveries: u32,
}

/// One node's view of its peers at a moment in time.
#[derive(Debug, Clone, PartialEq)]
pub struct MembershipView {
    /// The observing node.
    pub local: NodeId,
    /// Peer rows, ordered by node id.
    pub peers: Vec<PeerStatus>,
}

impl MembershipView {
    /// Whether every peer is currently classified alive.
    pub fn all_alive(&self) -> bool {
        self.peers.iter().all(|p| p.liveness == PeerLiveness::Alive)
    }

    /// The classification of `node` in this view, if it is a peer.
    pub fn liveness(&self, node: NodeId) -> Option<PeerLiveness> {
        self.peers
            .iter()
            .find(|p| p.node == node)
            .map(|p| p.liveness)
    }
}

/// The final membership picture of a run: one view per node, taken at
/// fabric teardown and surfaced in the runtime's execution report.
#[derive(Debug, Clone, PartialEq)]
pub struct MembershipReport {
    /// Per-node views, ordered by observing node id.
    pub views: Vec<MembershipView>,
}

impl MembershipReport {
    /// Whether every node saw every peer alive.
    pub fn all_alive(&self) -> bool {
        self.views.iter().all(MembershipView::all_alive)
    }
}

struct PeerState {
    node: NodeId,
    last_heard_ms: u64,
    heartbeats: u64,
    frames: u64,
    recoveries: u32,
    /// Sticky death latch: set when the peer's silence was observed to
    /// cross `dead_after`, cleared only by an incarnation-fenced rejoin.
    dead: bool,
    /// Highest incarnation this peer has joined with.
    incarnation: u32,
}

/// Pure liveness tracker: feed it received-frame events with injected
/// millisecond timestamps, ask it for a [`MembershipView`] at any moment.
///
/// A peer never heard from is measured against the tracker's creation
/// time, so a node that never manages to connect drifts to suspect/dead
/// like any other silent peer.
pub struct LivenessTracker {
    local: NodeId,
    suspect_after_ms: u64,
    dead_after_ms: u64,
    peers: Vec<PeerState>,
}

impl LivenessTracker {
    /// A tracker for `local` observing `peers`, born at `now_ms`.
    pub fn new(
        local: NodeId,
        peers: impl IntoIterator<Item = NodeId>,
        suspect_after_ms: u64,
        dead_after_ms: u64,
        now_ms: u64,
    ) -> Self {
        let mut peers: Vec<PeerState> = peers
            .into_iter()
            .map(|node| PeerState {
                node,
                last_heard_ms: now_ms,
                heartbeats: 0,
                frames: 0,
                recoveries: 0,
                dead: false,
                incarnation: 0,
            })
            .collect();
        peers.sort_by_key(|p| p.node.0);
        LivenessTracker {
            local,
            suspect_after_ms,
            dead_after_ms,
            peers,
        }
    }

    fn classify(&self, silent_ms: u64) -> PeerLiveness {
        if silent_ms >= self.dead_after_ms {
            PeerLiveness::Dead
        } else if silent_ms >= self.suspect_after_ms {
            PeerLiveness::Suspect
        } else {
            PeerLiveness::Alive
        }
    }

    /// Record a frame received from `from` at `now_ms`. Any frame counts
    /// as a liveness signal; `heartbeat` additionally bumps the heartbeat
    /// counter. Unknown senders are ignored (the socket layer has already
    /// rejected them at the hello handshake).
    ///
    /// Death is sticky: a frame arriving after the peer's silence already
    /// crossed `dead_after` latches the peer dead instead of reviving it —
    /// frames still count, but the peer stays [`PeerLiveness::Dead`] until
    /// an incarnation-fenced [`record_rejoin`](Self::record_rejoin).
    pub fn record_frame(&mut self, from: NodeId, heartbeat: bool, now_ms: u64) {
        let (suspect_after, dead_after) = (self.suspect_after_ms, self.dead_after_ms);
        if let Some(peer) = self.peers.iter_mut().find(|p| p.node == from) {
            let silent = now_ms.saturating_sub(peer.last_heard_ms);
            if silent >= dead_after {
                // The peer was silently dead when this frame arrived: latch
                // it. Whatever it is sending reflects pre-death state.
                peer.dead = true;
            } else if !peer.dead && silent >= suspect_after {
                peer.recoveries += 1;
            }
            peer.last_heard_ms = peer.last_heard_ms.max(now_ms);
            peer.frames += 1;
            if heartbeat {
                peer.heartbeats += 1;
            }
        }
    }

    /// Record a join/rejoin handshake from `from` carrying its
    /// `incarnation` number at `now_ms`. Returns whether the peer is
    /// admitted (i.e. not left latched dead).
    ///
    /// While a peer is latched dead, only a hello with a *strictly
    /// greater* incarnation than any previously seen clears the latch — a
    /// deliberate restart bumps its incarnation, whereas a stale process
    /// reconnecting (or a replayed hello) presents the old one and is
    /// refused. A fenced rejoin counts as a recovery and as a liveness
    /// signal; unknown senders are ignored and refused.
    pub fn record_rejoin(&mut self, from: NodeId, incarnation: u32, now_ms: u64) -> bool {
        let dead_after = self.dead_after_ms;
        let Some(peer) = self.peers.iter_mut().find(|p| p.node == from) else {
            return false;
        };
        let silent = now_ms.saturating_sub(peer.last_heard_ms);
        if silent >= dead_after {
            peer.dead = true;
        }
        if peer.dead {
            if incarnation <= peer.incarnation {
                // Stale incarnation: a ghost of the dead process. Refuse
                // revival; do not even count the frame as liveness.
                return false;
            }
            peer.dead = false;
            peer.recoveries += 1;
        }
        peer.incarnation = peer.incarnation.max(incarnation);
        peer.last_heard_ms = peer.last_heard_ms.max(now_ms);
        peer.frames += 1;
        true
    }

    /// The membership view as of `now_ms`.
    pub fn view(&self, now_ms: u64) -> MembershipView {
        MembershipView {
            local: self.local,
            peers: self
                .peers
                .iter()
                .map(|p| {
                    let silent_ms = now_ms.saturating_sub(p.last_heard_ms);
                    PeerStatus {
                        node: p.node,
                        liveness: if p.dead {
                            PeerLiveness::Dead
                        } else {
                            self.classify(silent_ms)
                        },
                        heartbeats: p.heartbeats,
                        frames: p.frames,
                        silent_ms,
                        recoveries: p.recoveries,
                    }
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> LivenessTracker {
        // Suspect after 100 ms of silence, dead after 300 ms.
        LivenessTracker::new(NodeId(0), [NodeId(1), NodeId(2)], 100, 300, 1_000)
    }

    #[test]
    fn fresh_peers_are_alive_until_thresholds_pass() {
        let t = tracker();
        assert!(t.view(1_000).all_alive());
        assert!(t.view(1_099).all_alive());
        assert_eq!(
            t.view(1_100).liveness(NodeId(1)),
            Some(PeerLiveness::Suspect)
        );
        assert_eq!(
            t.view(1_299).liveness(NodeId(1)),
            Some(PeerLiveness::Suspect)
        );
        assert_eq!(t.view(1_300).liveness(NodeId(1)), Some(PeerLiveness::Dead));
    }

    #[test]
    fn heartbeats_keep_a_peer_alive_and_silence_degrades_it() {
        let mut t = tracker();
        // Node 1 heartbeats regularly; node 2 goes quiet.
        for step in 1..=10u64 {
            t.record_frame(NodeId(1), true, 1_000 + step * 50);
        }
        let view = t.view(1_500);
        assert_eq!(view.liveness(NodeId(1)), Some(PeerLiveness::Alive));
        assert_eq!(view.liveness(NodeId(2)), Some(PeerLiveness::Dead));
        assert!(!view.all_alive());
        let n1 = view.peers.iter().find(|p| p.node == NodeId(1)).unwrap();
        assert_eq!(n1.heartbeats, 10);
        assert_eq!(n1.frames, 10);
        assert_eq!(n1.silent_ms, 0);
    }

    #[test]
    fn payload_frames_count_as_liveness_signals() {
        let mut t = tracker();
        t.record_frame(NodeId(2), false, 1_250);
        let view = t.view(1_300);
        assert_eq!(view.liveness(NodeId(2)), Some(PeerLiveness::Alive));
        let n2 = view.peers.iter().find(|p| p.node == NodeId(2)).unwrap();
        assert_eq!(n2.heartbeats, 0);
        assert_eq!(n2.frames, 1);
    }

    #[test]
    fn resumed_heartbeats_recover_a_suspect_peer() {
        let mut t = tracker();
        // Quiet into suspect territory, then a heartbeat arrives.
        assert_eq!(
            t.view(1_150).liveness(NodeId(1)),
            Some(PeerLiveness::Suspect)
        );
        t.record_frame(NodeId(1), true, 1_150);
        let view = t.view(1_160);
        assert_eq!(view.liveness(NodeId(1)), Some(PeerLiveness::Alive));
        let n1 = view.peers.iter().find(|p| p.node == NodeId(1)).unwrap();
        assert_eq!(n1.recoveries, 1);

        // A second lapse into suspect territory, then recovery again.
        t.record_frame(NodeId(1), true, 1_300);
        let n1 = t.view(1_310).peers[0].clone();
        assert_eq!(n1.recoveries, 2);
        assert_eq!(n1.liveness, PeerLiveness::Alive);
    }

    #[test]
    fn dead_peers_do_not_resurrect_on_resumed_frames() {
        let mut t = tracker();
        // Quiet long enough to be dead, then the old connection speaks up.
        assert_eq!(t.view(1_400).liveness(NodeId(1)), Some(PeerLiveness::Dead));
        t.record_frame(NodeId(1), true, 1_400);
        // The frame latches death instead of reviving the peer: whatever
        // that process believes predates its eviction.
        let view = t.view(1_410);
        assert_eq!(view.liveness(NodeId(1)), Some(PeerLiveness::Dead));
        let n1 = view.peers.iter().find(|p| p.node == NodeId(1)).unwrap();
        assert_eq!(n1.recoveries, 0);
        assert_eq!(n1.frames, 1);

        // Even a steady stream of fresh heartbeats stays latched out.
        for step in 1..=5u64 {
            t.record_frame(NodeId(1), true, 1_400 + step * 50);
        }
        assert_eq!(t.view(1_660).liveness(NodeId(1)), Some(PeerLiveness::Dead));
    }

    #[test]
    fn incarnation_fenced_rejoin_revives_a_dead_peer() {
        let mut t = tracker();
        // Suspect, then dead, latched by a resumed frame.
        assert_eq!(
            t.view(1_200).liveness(NodeId(1)),
            Some(PeerLiveness::Suspect)
        );
        t.record_frame(NodeId(1), false, 1_400);
        assert_eq!(t.view(1_400).liveness(NodeId(1)), Some(PeerLiveness::Dead));

        // A rejoin at the old incarnation is a ghost: refused, still dead.
        assert!(!t.record_rejoin(NodeId(1), 0, 1_450));
        assert_eq!(t.view(1_450).liveness(NodeId(1)), Some(PeerLiveness::Dead));

        // A rejoin with a strictly greater incarnation is a real restart.
        assert!(t.record_rejoin(NodeId(1), 1, 1_500));
        let view = t.view(1_510);
        assert_eq!(view.liveness(NodeId(1)), Some(PeerLiveness::Alive));
        let n1 = view.peers.iter().find(|p| p.node == NodeId(1)).unwrap();
        assert_eq!(n1.recoveries, 1);

        // Replaying the same rejoin after another death is refused again.
        assert_eq!(t.view(1_900).liveness(NodeId(1)), Some(PeerLiveness::Dead));
        assert!(!t.record_rejoin(NodeId(1), 1, 1_900));
        assert_eq!(t.view(1_900).liveness(NodeId(1)), Some(PeerLiveness::Dead));
        assert!(t.record_rejoin(NodeId(1), 2, 1_950));
        assert_eq!(t.view(1_960).liveness(NodeId(1)), Some(PeerLiveness::Alive));
    }

    #[test]
    fn rejoin_from_a_live_peer_is_an_ordinary_liveness_signal() {
        let mut t = tracker();
        // A reconnect while still alive (e.g. a dropped TCP connection
        // re-established quickly) needs no fence.
        assert!(t.record_rejoin(NodeId(2), 0, 1_050));
        let view = t.view(1_060);
        assert_eq!(view.liveness(NodeId(2)), Some(PeerLiveness::Alive));
        let n2 = view.peers.iter().find(|p| p.node == NodeId(2)).unwrap();
        assert_eq!(n2.recoveries, 0);
        assert_eq!(n2.frames, 1);
        // Unknown senders are refused outright.
        assert!(!t.record_rejoin(NodeId(9), 7, 1_070));
    }

    #[test]
    fn unknown_senders_are_ignored() {
        let mut t = tracker();
        t.record_frame(NodeId(9), true, 1_050);
        assert_eq!(t.view(1_050).peers.len(), 2);
        assert_eq!(t.view(1_050).liveness(NodeId(9)), None);
    }

    #[test]
    fn report_aggregates_views() {
        let t = tracker();
        let alive = MembershipReport {
            views: vec![t.view(1_000)],
        };
        assert!(alive.all_alive());
        let degraded = MembershipReport {
            views: vec![t.view(1_000), t.view(2_000)],
        };
        assert!(!degraded.all_alive());
    }

    #[test]
    fn liveness_labels_render() {
        assert_eq!(PeerLiveness::Alive.to_string(), "alive");
        assert_eq!(PeerLiveness::Suspect.to_string(), "suspect");
        assert_eq!(PeerLiveness::Dead.to_string(), "dead");
    }
}
