//! Deterministic single-threaded transport used by protocol unit tests.
//!
//! Where the threaded [`crate::Fabric`] delivers messages whenever the
//! destination's server thread gets scheduled, the loopback keeps per-node
//! FIFO queues in one structure so a test can interleave protocol engines in
//! a fully controlled order and assert on every intermediate state.

use crate::category::MsgCategory;
use crate::envelope::{Envelope, MESSAGE_HEADER_BYTES};
use crate::stats::StatsCollector;
use dsm_model::{NetworkParams, SimTime};
use dsm_objspace::NodeId;
use std::collections::VecDeque;

/// A deterministic in-memory message switch.
#[derive(Debug)]
pub struct Loopback<M> {
    params: NetworkParams,
    queues: Vec<VecDeque<Envelope<M>>>,
    stats: StatsCollector,
}

impl<M> Loopback<M> {
    /// Create a switch for `num_nodes` nodes.
    ///
    /// # Panics
    /// Panics if `num_nodes` is zero.
    pub fn new(num_nodes: usize, params: NetworkParams, stats: StatsCollector) -> Self {
        assert!(num_nodes > 0, "cluster must have at least one node");
        Loopback {
            params,
            queues: (0..num_nodes).map(|_| VecDeque::new()).collect(),
            stats,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.queues.len()
    }

    /// Send a message from `src` to `dst` (same stamping and accounting as
    /// the threaded fabric). Returns the arrival time.
    pub fn send(
        &mut self,
        src: NodeId,
        dst: NodeId,
        category: MsgCategory,
        payload_bytes: u64,
        sent_at: SimTime,
        payload: M,
    ) -> SimTime {
        let wire_bytes = payload_bytes + MESSAGE_HEADER_BYTES;
        let arrival = sent_at + self.params.hockney.latency(wire_bytes);
        self.stats.record(src, category, wire_bytes);
        let envelope = Envelope {
            src,
            dst,
            category,
            wire_bytes,
            sent_at,
            arrival,
            payload,
        };
        self.queues
            .get_mut(dst.index())
            .unwrap_or_else(|| panic!("destination {dst} out of range"))
            .push_back(envelope);
        arrival
    }

    /// Pop the next message queued for `node`, if any.
    pub fn pop(&mut self, node: NodeId) -> Option<Envelope<M>> {
        self.queues[node.index()].pop_front()
    }

    /// Number of messages queued for `node`.
    pub fn pending(&self, node: NodeId) -> usize {
        self.queues[node.index()].len()
    }

    /// Total messages queued anywhere.
    pub fn pending_total(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// True if no messages are in flight.
    pub fn is_quiescent(&self) -> bool {
        self.pending_total() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_per_destination() {
        let mut lb: Loopback<u32> = Loopback::new(3, NetworkParams::ideal(), StatsCollector::new());
        lb.send(
            NodeId(0),
            NodeId(2),
            MsgCategory::Control,
            0,
            SimTime::ZERO,
            1,
        );
        lb.send(
            NodeId(1),
            NodeId(2),
            MsgCategory::Control,
            0,
            SimTime::ZERO,
            2,
        );
        lb.send(
            NodeId(0),
            NodeId(1),
            MsgCategory::Control,
            0,
            SimTime::ZERO,
            3,
        );
        assert_eq!(lb.pending(NodeId(2)), 2);
        assert_eq!(lb.pending(NodeId(1)), 1);
        assert_eq!(lb.pending_total(), 3);
        assert!(!lb.is_quiescent());
        assert_eq!(lb.pop(NodeId(2)).unwrap().payload, 1);
        assert_eq!(lb.pop(NodeId(2)).unwrap().payload, 2);
        assert!(lb.pop(NodeId(2)).is_none());
        assert_eq!(lb.pop(NodeId(1)).unwrap().payload, 3);
        assert!(lb.is_quiescent());
    }

    #[test]
    fn stamps_arrival_with_hockney_latency() {
        let stats = StatsCollector::new();
        let mut lb: Loopback<()> = Loopback::new(2, NetworkParams::fast_ethernet(), stats.clone());
        let sent = SimTime::from_micros(100.0);
        let arrival = lb.send(NodeId(0), NodeId(1), MsgCategory::Diff, 1000, sent, ());
        let env = lb.pop(NodeId(1)).unwrap();
        assert_eq!(env.arrival, arrival);
        assert!(env.arrival > sent);
        assert_eq!(stats.snapshot().category(MsgCategory::Diff).count, 1);
        assert_eq!(
            stats.snapshot().category(MsgCategory::Diff).bytes,
            1000 + MESSAGE_HEADER_BYTES
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unknown_destination_panics() {
        let mut lb: Loopback<()> = Loopback::new(1, NetworkParams::ideal(), StatsCollector::new());
        lb.send(
            NodeId(0),
            NodeId(3),
            MsgCategory::Control,
            0,
            SimTime::ZERO,
            (),
        );
    }
}
