//! The deterministic simulation fabric.
//!
//! Where the threaded [`crate::Fabric`] hands every message to the OS
//! scheduler (each node's server thread drains its own channel whenever it
//! happens to run), the [`SimFabric`] owns delivery itself: every send is
//! parked in one virtual-time-ordered event queue, and a single scheduler
//! thread (the runtime's sim server loop) pops events one at a time, only
//! when every application agent is parked. Execution therefore proceeds as
//! one deterministic sequence of `(deliver event, run woken agents to their
//! next blocking point)` steps:
//!
//! * **Replayable:** the pop order depends only on the virtual delivery
//!   times and a fixed tie-break `(deliver_at, src, dst, link_seq)`, all of
//!   which are pure functions of the seed and the application — the same
//!   seed reproduces a bit-identical [`DeliveryTrace`].
//! * **Perturbable:** seeded [`LinkPerturbation`]s (latency jitter, bounded
//!   reordering, bursty delay spikes) reshape delivery times per link, so a
//!   seed sweep explores genuinely different message interleavings — while
//!   a per-link monotonicity clamp preserves the protocol's per-link FIFO
//!   ordering assumption (see `dsm-core`'s ordering notes).
//! * **Event-driven:** the scheduler blocks on a condition variable until
//!   the cluster is quiescent; there are no poll-interval sleeps anywhere
//!   in sim mode.
//! * **Lossy (opt-in):** a [`SimConfig`] may additionally describe message
//!   *loss* — seeded per-link random drops ([`SimConfig::drop_rate`]), one
//!   [`PartitionSpec`] partition/heal cycle and one [`PauseSpec`] node
//!   crash window, all decided at send time as pure functions of the seed
//!   and virtual time. Drops consume their per-link sequence number and
//!   are recorded as [`DropRecord`]s on the [`DeliveryTrace`], so lossy
//!   runs replay bit-identically and diagnostics can attribute every gap.
//!
//! The quiescence protocol is a simple activity count: every application
//! thread is one *agent*, counted active until it parks on a reply
//! ([`SimEndpoint::agent_blocked`]) and re-counted when the scheduler wakes
//! it ([`SimEndpoint::agent_unblocked`]); [`SimFabric::next_step`] waits
//! for the count to reach zero before popping, so at every delivery point
//! the set of in-flight messages is complete and the choice deterministic.

use crate::category::MsgCategory;
use crate::envelope::{Envelope, MESSAGE_HEADER_BYTES};
use crate::stats::StatsCollector;
use dsm_model::{NetworkParams, SimDuration, SimTime};
use dsm_objspace::NodeId;
use dsm_util::SmallRng;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::{Arc, Condvar, Mutex};

// ----------------------------------------------------------------------
// Perturbations
// ----------------------------------------------------------------------

/// A pluggable, seeded delivery-time perturbation.
///
/// For every message the fabric calls every installed perturbation with the
/// message's link and base (Hockney) latency plus the link's private RNG
/// stream, and adds the returned extra delays to the delivery time. The
/// fabric then clamps the result so deliveries on one link never overtake
/// each other — implementations may stretch time arbitrarily without being
/// able to violate per-link FIFO ordering.
///
/// Determinism contract: the extra delay must be a pure function of the
/// arguments (the RNG stream is per-link and advances only through these
/// calls), so a seed replays bit-identically.
pub trait LinkPerturbation: Send {
    /// Extra delivery delay for one message on `src → dst`.
    fn extra_delay(
        &mut self,
        src: NodeId,
        dst: NodeId,
        base: SimDuration,
        rng: &mut SmallRng,
    ) -> SimDuration;
}

/// Multiplicative latency jitter: each message is delayed by an extra
/// `U[0, max_factor] × base` drawn from the link's stream — a crude but
/// effective per-link latency distribution.
#[derive(Debug, Clone, Copy)]
pub struct LatencyJitter {
    /// Upper bound of the uniform extra-delay factor.
    pub max_factor: f64,
}

impl LinkPerturbation for LatencyJitter {
    fn extra_delay(
        &mut self,
        _src: NodeId,
        _dst: NodeId,
        base: SimDuration,
        rng: &mut SmallRng,
    ) -> SimDuration {
        base * (rng.next_f64() * self.max_factor)
    }
}

/// Bounded reordering: with probability `probability` a message is held
/// back by an extra `U[0, hold_factor] × base`, letting later messages on
/// *other* links overtake it (same-link overtaking is prevented by the
/// fabric's FIFO clamp). The hold is bounded, so no message is starved.
#[derive(Debug, Clone, Copy)]
pub struct BoundedReorder {
    /// Probability that a message is held back.
    pub probability: f64,
    /// Upper bound of the hold, as a multiple of the base latency.
    pub hold_factor: f64,
}

impl LinkPerturbation for BoundedReorder {
    fn extra_delay(
        &mut self,
        _src: NodeId,
        _dst: NodeId,
        base: SimDuration,
        rng: &mut SmallRng,
    ) -> SimDuration {
        // Both variates are always drawn so the stream position does not
        // depend on earlier outcomes (keeps traces stable under small
        // probability edits).
        let hit = rng.next_f64() < self.probability;
        let hold = rng.next_f64() * self.hold_factor;
        if hit {
            base * hold
        } else {
            SimDuration::ZERO
        }
    }
}

/// Bursty delay spikes: with probability `probability` a link enters a
/// burst during which the next `length` messages on it are each delayed by
/// `factor × base` — the congested-switch / flaky-cable pattern.
#[derive(Debug, Clone)]
pub struct DelayBursts {
    /// Probability that a (non-bursting) link starts a burst on a send.
    pub probability: f64,
    /// Number of messages a burst lasts.
    pub length: u32,
    /// Delay multiplier applied during a burst.
    pub factor: f64,
    /// Remaining burst length per link.
    remaining: HashMap<(u16, u16), u32>,
}

impl DelayBursts {
    /// A burst perturbation with the given start probability, length and
    /// delay factor.
    pub fn new(probability: f64, length: u32, factor: f64) -> Self {
        DelayBursts {
            probability,
            length,
            factor,
            remaining: HashMap::new(),
        }
    }
}

impl LinkPerturbation for DelayBursts {
    fn extra_delay(
        &mut self,
        src: NodeId,
        dst: NodeId,
        base: SimDuration,
        rng: &mut SmallRng,
    ) -> SimDuration {
        let slot = self.remaining.entry((src.0, dst.0)).or_insert(0);
        let roll = rng.next_f64();
        if *slot == 0 && roll < self.probability {
            *slot = self.length;
        }
        if *slot > 0 {
            *slot -= 1;
            base * self.factor
        } else {
            SimDuration::ZERO
        }
    }
}

/// One network partition / heal cycle on virtual time: while `sent_at` is
/// inside `[from, until)`, any message whose endpoints sit on opposite
/// sides of `mask` is dropped at send time. Bit `i` of `mask` selects the
/// side node `i` belongs to; the partition heals by itself once virtual
/// time moves past `until` (retransmissions carry later send times).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionSpec {
    /// Virtual time the partition starts (inclusive).
    pub from: SimTime,
    /// Virtual time the partition heals (exclusive).
    pub until: SimTime,
    /// Side assignment: bit `i` set ⇒ node `i` is on side B.
    pub mask: u64,
}

impl PartitionSpec {
    fn cuts(&self, src: NodeId, dst: NodeId, sent_at: SimTime) -> bool {
        if sent_at < self.from || sent_at >= self.until {
            return false;
        }
        let side = |n: NodeId| (self.mask >> (n.0 as u64 % 64)) & 1;
        side(src) != side(dst)
    }
}

/// A node pause (crash window) on virtual time: while `sent_at` is inside
/// `[from, until)`, every message to *or* from `node` is dropped — the
/// node neither receives nor is heard from, exactly like a crashed or
/// wedged host. Self-sends are exempt (a node always reaches itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PauseSpec {
    /// The paused node.
    pub node: u16,
    /// Virtual time the pause starts (inclusive).
    pub from: SimTime,
    /// Virtual time the node resumes (exclusive).
    pub until: SimTime,
}

impl PauseSpec {
    fn cuts(&self, src: NodeId, dst: NodeId, sent_at: SimTime) -> bool {
        (src.0 == self.node || dst.0 == self.node) && sent_at >= self.from && sent_at < self.until
    }
}

/// Seeded perturbation configuration for a [`SimFabric`] run — the value
/// version of the pluggable [`LinkPerturbation`] stack, so it can live in a
/// cloneable cluster configuration. `build` instantiates the stack; custom
/// perturbations go through [`SimFabric::with_perturbations`].
///
/// Besides the delay perturbations, a config may describe *loss*: seeded
/// per-link random drops, one partition/heal cycle and one node pause, all
/// decided at send time as pure functions of the seed and virtual time.
/// Any loss makes the config [`SimConfig::is_lossy`], which the runtime
/// uses to arm its timeout/retry machinery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// The fabric seed: per-link RNG streams derive from it.
    pub seed: u64,
    /// [`LatencyJitter::max_factor`] (0 disables jitter).
    pub latency_jitter: f64,
    /// [`BoundedReorder::probability`] (0 disables reordering holds).
    pub reorder_probability: f64,
    /// [`BoundedReorder::hold_factor`].
    pub reorder_hold: f64,
    /// [`DelayBursts::probability`] (0 disables bursts).
    pub burst_probability: f64,
    /// [`DelayBursts::length`].
    pub burst_length: u32,
    /// [`DelayBursts::factor`].
    pub burst_factor: f64,
    /// Per-message random drop probability (0 disables; seeded per link).
    pub drop_rate: f64,
    /// One partition/heal cycle (None disables).
    pub partition: Option<PartitionSpec>,
    /// One node-pause (crash) window (None disables).
    pub pause: Option<PauseSpec>,
    /// Number of scheduler workers the runtime should run protocol
    /// handlers on (1 = the sequential reference scheduler). Purely a
    /// scheduling knob: any worker count replays the same seed to the
    /// same bit-identical [`DeliveryTrace`] (see
    /// [`SimFabric::next_frontier`]).
    pub workers: usize,
}

impl SimConfig {
    /// No perturbations at all: delivery in pure Hockney-model order. The
    /// seed is irrelevant (kept for labelling); use this to compare the sim
    /// fabric against the threaded fabric at identical virtual timings.
    pub fn calm(seed: u64) -> Self {
        SimConfig {
            seed,
            latency_jitter: 0.0,
            reorder_probability: 0.0,
            reorder_hold: 0.0,
            burst_probability: 0.0,
            burst_length: 0,
            burst_factor: 0.0,
            drop_rate: 0.0,
            partition: None,
            pause: None,
            workers: 1,
        }
    }

    /// The default seed-sweep configuration: mild jitter, occasional
    /// bounded holds and rare short bursts — enough schedule diversity that
    /// distinct seeds produce distinct delivery orders on any workload with
    /// real concurrency.
    pub fn perturbed(seed: u64) -> Self {
        SimConfig {
            seed,
            latency_jitter: 0.5,
            reorder_probability: 0.05,
            reorder_hold: 4.0,
            burst_probability: 0.02,
            burst_length: 4,
            burst_factor: 6.0,
            drop_rate: 0.0,
            partition: None,
            pause: None,
            workers: 1,
        }
    }

    /// An adversarial configuration: heavy jitter, frequent holds and long
    /// bursts, for stress sweeps hunting ordering bugs.
    pub fn stormy(seed: u64) -> Self {
        SimConfig {
            seed,
            latency_jitter: 2.0,
            reorder_probability: 0.2,
            reorder_hold: 8.0,
            burst_probability: 0.1,
            burst_length: 8,
            burst_factor: 12.0,
            drop_rate: 0.0,
            partition: None,
            pause: None,
            workers: 1,
        }
    }

    /// The default *lossy* sweep configuration: [`SimConfig::perturbed`]
    /// delay behaviour plus 1% seeded per-link drops and one early
    /// partition/heal cycle splitting the low half of the cluster from the
    /// high half. The window is narrow relative to the runtime's failover
    /// threshold, so a partition forces retries but never a (spurious)
    /// home re-election.
    pub fn lossy(seed: u64) -> Self {
        SimConfig {
            drop_rate: 0.01,
            partition: Some(PartitionSpec {
                from: SimTime::from_micros(150.0),
                until: SimTime::from_micros(350.0),
                mask: 0b0011,
            }),
            ..SimConfig::perturbed(seed)
        }
    }

    /// Random drop probability `p` on every link (builder style).
    pub fn with_drop_rate(mut self, p: f64) -> Self {
        self.drop_rate = p;
        self
    }

    /// One partition/heal cycle (builder style).
    pub fn with_partition(mut self, partition: PartitionSpec) -> Self {
        self.partition = Some(partition);
        self
    }

    /// One node-pause window (builder style).
    pub fn with_pause(mut self, pause: PauseSpec) -> Self {
        self.pause = Some(pause);
        self
    }

    /// Number of scheduler workers (builder style). `0` and `1` both
    /// select the sequential reference scheduler; any larger count runs
    /// conflict-free delivery frontiers on a worker pool without changing
    /// the replayed trace.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Whether this configuration can lose messages — the signal the
    /// runtime uses to arm timeouts, retries and home re-election.
    pub fn is_lossy(&self) -> bool {
        self.drop_rate > 0.0 || self.partition.is_some() || self.pause.is_some()
    }

    /// Instantiate the perturbation stack this configuration describes.
    pub fn build(&self) -> Vec<Box<dyn LinkPerturbation>> {
        let mut stack: Vec<Box<dyn LinkPerturbation>> = Vec::new();
        if self.latency_jitter > 0.0 {
            stack.push(Box::new(LatencyJitter {
                max_factor: self.latency_jitter,
            }));
        }
        if self.reorder_probability > 0.0 {
            stack.push(Box::new(BoundedReorder {
                probability: self.reorder_probability,
                hold_factor: self.reorder_hold,
            }));
        }
        if self.burst_probability > 0.0 && self.burst_length > 0 {
            stack.push(Box::new(DelayBursts::new(
                self.burst_probability,
                self.burst_length,
                self.burst_factor,
            )));
        }
        stack
    }
}

// ----------------------------------------------------------------------
// Delivery traces
// ----------------------------------------------------------------------

/// One delivered message, as recorded by the scheduler in pop order. All
/// fields are exact integers, so trace equality is bit-identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryRecord {
    /// Zero-based delivery index.
    pub seq: u64,
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Message category.
    pub category: MsgCategory,
    /// Wire size (payload + header) in bytes.
    pub wire_bytes: u64,
    /// Virtual send time.
    pub sent_at: SimTime,
    /// Virtual delivery time (after perturbations and the FIFO clamp).
    pub deliver_at: SimTime,
    /// Per-link send sequence number (0-based, per `src → dst`).
    pub link_seq: u64,
}

/// Why the fabric dropped a message at send time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Seeded per-link random loss ([`SimConfig::drop_rate`]).
    Random,
    /// The endpoints sat on opposite sides of an active [`PartitionSpec`].
    Partition,
    /// One endpoint was inside its [`PauseSpec`] crash window.
    Pause,
}

impl std::fmt::Display for DropReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DropReason::Random => write!(f, "random"),
            DropReason::Partition => write!(f, "partition"),
            DropReason::Pause => write!(f, "pause"),
        }
    }
}

/// One message the fabric dropped, recorded in drop order. Dropped sends
/// still consume their per-link sequence number, so a drop shows up as a
/// `link_seq` gap in the delivery stream — these records are what lets the
/// quiescence diagnostics and the FIFO checker tell an injected drop from
/// a genuine protocol stall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DropRecord {
    /// Zero-based drop index.
    pub seq: u64,
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Message category.
    pub category: MsgCategory,
    /// Wire size (payload + header) in bytes.
    pub wire_bytes: u64,
    /// Virtual send time.
    pub sent_at: SimTime,
    /// Per-link send sequence number the drop consumed.
    pub link_seq: u64,
    /// Why the message was dropped.
    pub reason: DropReason,
}

/// The complete delivery history of one sim-fabric run, in delivery order.
///
/// Two runs of the same seed must produce `==` traces; two different seeds
/// typically differ at least in [`DeliveryTrace::order_signature`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeliveryTrace {
    /// The delivered messages, in delivery order.
    pub records: Vec<DeliveryRecord>,
    /// The dropped messages, in drop (send) order. Empty on lossless runs.
    pub drops: Vec<DropRecord>,
}

impl DeliveryTrace {
    /// Number of delivered messages.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing was delivered.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// An FNV-1a fingerprint over every field of every record — a compact
    /// stand-in for full trace equality in assertion messages and logs.
    pub fn checksum(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |value: u64| {
            hash ^= value;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for r in &self.records {
            mix(r.seq);
            mix(u64::from(r.src.0));
            mix(u64::from(r.dst.0));
            mix(r.category as u64);
            mix(r.wire_bytes);
            mix(r.sent_at.as_nanos());
            mix(r.deliver_at.as_nanos());
            mix(r.link_seq);
        }
        mix(self.records.len() as u64);
        for d in &self.drops {
            mix(d.seq);
            mix(u64::from(d.src.0));
            mix(u64::from(d.dst.0));
            mix(d.category as u64);
            mix(d.wire_bytes);
            mix(d.sent_at.as_nanos());
            mix(d.link_seq);
            mix(d.reason as u64);
        }
        mix(self.drops.len() as u64);
        hash
    }

    /// The pure delivery *order* — `(src, dst, link_seq)` per delivery,
    /// with all timing stripped. Two seeds "provably yield different
    /// delivery orders" exactly when their signatures differ.
    pub fn order_signature(&self) -> Vec<(u16, u16, u64)> {
        self.records
            .iter()
            .map(|r| (r.src.0, r.dst.0, r.link_seq))
            .collect()
    }

    /// Verify the per-link FIFO guarantee: on every link, deliveries occur
    /// in send order (`link_seq` ascending) at non-decreasing delivery
    /// times. `link_seq` gaps are allowed only where every skipped
    /// sequence number is accounted for by a [`DropRecord`] on the same
    /// link. Returns the offending record index on violation.
    pub fn per_link_fifo_violation(&self) -> Option<usize> {
        let mut dropped: HashMap<(u16, u16), HashSet<u64>> = HashMap::new();
        for d in &self.drops {
            dropped
                .entry((d.src.0, d.dst.0))
                .or_default()
                .insert(d.link_seq);
        }
        let empty = HashSet::new();
        // Next expected link_seq and latest delivery time per link.
        let mut last: HashMap<(u16, u16), (u64, SimTime)> = HashMap::new();
        for (i, r) in self.records.iter().enumerate() {
            let link = (r.src.0, r.dst.0);
            let gaps = dropped.get(&link).unwrap_or(&empty);
            let (mut expected, at) = last.get(&link).copied().unwrap_or((0, SimTime::ZERO));
            while expected < r.link_seq && gaps.contains(&expected) {
                expected += 1;
            }
            if r.link_seq != expected || r.deliver_at < at {
                return Some(i);
            }
            last.insert(link, (r.link_seq + 1, r.deliver_at));
        }
        None
    }
}

// ----------------------------------------------------------------------
// The fabric
// ----------------------------------------------------------------------

/// One message parked in the virtual-time event queue. Ordered as a
/// min-heap over the deterministic key `(deliver_at, src, dst, link_seq)`;
/// the key is total (same-link events differ in `link_seq`, distinct links
/// differ in `(src, dst)`), so the pop order never depends on push order.
struct SimEvent<M> {
    deliver_at: SimTime,
    link_seq: u64,
    envelope: Envelope<M>,
}

impl<M> SimEvent<M> {
    fn key(&self) -> (SimTime, u16, u16, u64) {
        (
            self.deliver_at,
            self.envelope.src.0,
            self.envelope.dst.0,
            self.link_seq,
        )
    }
}

impl<M> PartialEq for SimEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<M> Eq for SimEvent<M> {}
impl<M> PartialOrd for SimEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for SimEvent<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: `BinaryHeap` is a max-heap, we want the earliest event.
        other.key().cmp(&self.key())
    }
}

/// Per-link bookkeeping: the link's RNG stream, send counter and the FIFO
/// clamp (latest scheduled delivery).
struct LinkState {
    rng: SmallRng,
    next_seq: u64,
    last_deliver: SimTime,
}

/// What the scheduler should do next (see [`SimFabric::next_step`]).
pub enum SimStep<M> {
    /// Deliver this message to its destination's protocol logic.
    Deliver(Envelope<M>),
    /// No event is pending but some application agents are still alive (all
    /// of them parked): the caller should retry deferred work, and treat
    /// "no progress possible" as a protocol deadlock.
    Stalled,
    /// Every application agent has finished and no event is pending.
    Drained,
}

/// One scheduler macro-step for the parallel sim loop (see
/// [`SimFabric::next_frontier`]): either a conflict-free batch of
/// deliveries or the same terminal states as [`SimStep`].
pub enum SimFrontier<M> {
    /// Deliver these messages concurrently: their destinations are
    /// pairwise distinct, so their handlers touch disjoint node state.
    /// The batch is in canonical pop order — element 0 is exactly what
    /// [`SimFabric::next_step`] would have delivered.
    Deliver(Vec<Envelope<M>>),
    /// As [`SimStep::Stalled`].
    Stalled,
    /// As [`SimStep::Drained`].
    Drained,
}

/// The loss model a fabric applies at send time (all lossless by default).
#[derive(Debug, Clone, Copy, Default)]
struct LossSpec {
    drop_rate: f64,
    partition: Option<PartitionSpec>,
    pause: Option<PauseSpec>,
}

impl LossSpec {
    /// Decide whether a send is lost. Self-sends are never dropped: a node
    /// that can still run can always reach its own server, and the
    /// post-election self-serve path depends on it. Precedence is
    /// pause > partition > random; the random variate is drawn whenever
    /// `drop_rate > 0` regardless of the outcome, so the per-link stream
    /// position does not depend on window boundaries.
    fn drops(
        &self,
        src: NodeId,
        dst: NodeId,
        sent_at: SimTime,
        rng: &mut SmallRng,
    ) -> Option<DropReason> {
        let random = self.drop_rate > 0.0 && rng.next_f64() < self.drop_rate;
        if src == dst {
            return None;
        }
        if let Some(p) = &self.pause {
            if p.cuts(src, dst, sent_at) {
                return Some(DropReason::Pause);
            }
        }
        if let Some(p) = &self.partition {
            if p.cuts(src, dst, sent_at) {
                return Some(DropReason::Partition);
            }
        }
        if random {
            return Some(DropReason::Random);
        }
        None
    }
}

impl<M> SimState<M> {
    /// Record one popped event on the trace (trace order is canonical pop
    /// order, shared by the sequential and frontier schedulers) and hand
    /// back its envelope.
    fn record_delivery(&mut self, event: SimEvent<M>) -> Envelope<M> {
        let seq = self.delivered;
        self.delivered += 1;
        self.trace.push(DeliveryRecord {
            seq,
            src: event.envelope.src,
            dst: event.envelope.dst,
            category: event.envelope.category,
            wire_bytes: event.envelope.wire_bytes,
            sent_at: event.envelope.sent_at,
            deliver_at: event.deliver_at,
            link_seq: event.link_seq,
        });
        event.envelope
    }
}

struct SimState<M> {
    queue: BinaryHeap<SimEvent<M>>,
    links: HashMap<(u16, u16), LinkState>,
    perturbations: Vec<Box<dyn LinkPerturbation>>,
    loss: LossSpec,
    /// Application agents currently runnable (not parked, not finished).
    active: usize,
    /// Application agents that have finished for good.
    finished: usize,
    sent: u64,
    delivered: u64,
    dropped: u64,
    trace: Vec<DeliveryRecord>,
    drops: Vec<DropRecord>,
    seed: u64,
}

struct SimCore<M> {
    state: Mutex<SimState<M>>,
    quiescent: Condvar,
    num_nodes: usize,
    params: NetworkParams,
    stats: StatsCollector,
}

/// The deterministic, seeded, event-driven simulation fabric. See the
/// module documentation for the execution model.
pub struct SimFabric<M> {
    core: Arc<SimCore<M>>,
}

/// One node's attachment to a [`SimFabric`]: sending, and the agent
/// park/wake notifications the quiescence protocol needs.
pub struct SimEndpoint<M> {
    core: Arc<SimCore<M>>,
    node: NodeId,
}

impl<M> std::fmt::Debug for SimFabric<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimFabric")
            .field("num_nodes", &self.core.num_nodes)
            .finish_non_exhaustive()
    }
}

impl<M> std::fmt::Debug for SimEndpoint<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimEndpoint")
            .field("node", &self.node)
            .finish_non_exhaustive()
    }
}

impl<M: Send> SimFabric<M> {
    /// Build a sim fabric for `num_nodes` nodes with the perturbation stack
    /// described by `config`. The activity count starts at `num_nodes`: one
    /// agent per (about to be spawned) application thread.
    ///
    /// # Panics
    /// Panics if `num_nodes` is zero.
    pub fn new(
        num_nodes: usize,
        params: NetworkParams,
        stats: StatsCollector,
        config: SimConfig,
    ) -> Self {
        let fabric =
            Self::with_perturbations(num_nodes, params, stats, config.seed, config.build());
        fabric
            .core
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .loss = LossSpec {
            drop_rate: config.drop_rate,
            partition: config.partition,
            pause: config.pause,
        };
        fabric
    }

    /// As [`SimFabric::new`], but with an explicit (possibly custom)
    /// perturbation stack.
    ///
    /// # Panics
    /// Panics if `num_nodes` is zero.
    pub fn with_perturbations(
        num_nodes: usize,
        params: NetworkParams,
        stats: StatsCollector,
        seed: u64,
        perturbations: Vec<Box<dyn LinkPerturbation>>,
    ) -> Self {
        assert!(num_nodes > 0, "cluster must have at least one node");
        SimFabric {
            core: Arc::new(SimCore {
                state: Mutex::new(SimState {
                    queue: BinaryHeap::new(),
                    links: HashMap::new(),
                    perturbations,
                    loss: LossSpec::default(),
                    active: num_nodes,
                    finished: 0,
                    sent: 0,
                    delivered: 0,
                    dropped: 0,
                    trace: Vec::new(),
                    drops: Vec::new(),
                    seed,
                }),
                quiescent: Condvar::new(),
                num_nodes,
                params,
                stats,
            }),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.core.num_nodes
    }

    /// The endpoints, one per node in node order.
    pub fn endpoints(&self) -> Vec<SimEndpoint<M>> {
        (0..self.core.num_nodes)
            .map(|i| SimEndpoint {
                core: Arc::clone(&self.core),
                node: NodeId::from(i),
            })
            .collect()
    }

    /// Block until the cluster is quiescent (no application agent
    /// runnable), then pop the earliest pending event — the scheduler's
    /// one-step primitive. Event-driven: waits on a condition variable, no
    /// polling.
    pub fn next_step(&self) -> SimStep<M> {
        let mut state = self.core.state.lock().unwrap_or_else(|e| e.into_inner());
        while state.active > 0 {
            state = self
                .core
                .quiescent
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
        if let Some(event) = state.queue.pop() {
            SimStep::Deliver(state.record_delivery(event))
        } else if state.finished == self.core.num_nodes {
            SimStep::Drained
        } else {
            SimStep::Stalled
        }
    }

    /// Block until the cluster is quiescent, then report the virtual time
    /// of the earliest pending event **without popping it** (`None` when
    /// the queue is drained). This is the scheduler's timer primitive:
    /// before committing to a pop, the runtime compares the head's due
    /// time against its retry deadline and fires timed retransmission
    /// rounds first. Deciding on the un-popped head at the quiescence
    /// point makes the decision identical for the sequential and frontier
    /// schedulers, which is what keeps lossy traces a pure function of
    /// the seed at any worker count.
    pub fn peek_due(&self) -> Option<SimTime> {
        let mut state = self.core.state.lock().unwrap_or_else(|e| e.into_inner());
        while state.active > 0 {
            state = self
                .core
                .quiescent
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
        state.queue.peek().map(|event| event.deliver_at)
    }

    /// Block until the cluster is quiescent, then pop the maximal
    /// **conflict-free frontier**: the longest *prefix* of the canonical
    /// pop order whose destination nodes are pairwise distinct and whose
    /// delivery times all fall strictly before `first.deliver_at + L₀`,
    /// where `L₀` is the Hockney latency of an empty (header-only)
    /// message — the fastest any message can cross the wire.
    ///
    /// The batch is safe to hand to concurrent handlers without changing
    /// the replayed trace:
    ///
    /// * Distinct destinations mean the handlers read and write disjoint
    ///   node state, and every message they send leaves from their own
    ///   node, so the per-link RNG/sequence streams they consume are
    ///   disjoint too.
    /// * Anything those handlers send is sent at or after the arrival it
    ///   reacts to (`≥ first.deliver_at`) and takes at least `L₀` to
    ///   arrive, so no spawned event can be due before the cutoff: the
    ///   canonical heap order below the cutoff is already final when the
    ///   frontier is popped, and the trace (recorded here, at pop time)
    ///   is identical to what [`SimFabric::next_step`] would produce.
    /// * The prefix rule stops at the first destination collision rather
    ///   than skipping past it — delivering a later same-destination
    ///   event in the same batch would race its handler against the
    ///   earlier one, and skipping it for a *later* distinct-destination
    ///   event would reorder the trace.
    ///
    /// With `L₀ == 0` (ideal network) every frontier degenerates to a
    /// singleton and the scheduler is exactly sequential.
    ///
    /// `horizon` additionally clamps the batch: no event due at or past
    /// it joins the frontier (the head itself always pops). The runtime
    /// passes its next retry deadline here so a timed retransmission
    /// round never lands *inside* a frontier — the sequential scheduler,
    /// which checks the deadline before every singleton pop, would have
    /// fired between those two events, and the traces would diverge.
    pub fn next_frontier(&self, horizon: Option<SimTime>) -> SimFrontier<M> {
        let mut state = self.core.state.lock().unwrap_or_else(|e| e.into_inner());
        while state.active > 0 {
            state = self
                .core
                .quiescent
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
        let Some(first) = state.queue.pop() else {
            return if state.finished == self.core.num_nodes {
                SimFrontier::Drained
            } else {
                SimFrontier::Stalled
            };
        };
        let mut cutoff = first.deliver_at + self.core.params.hockney.latency(MESSAGE_HEADER_BYTES);
        if let Some(deadline) = horizon {
            cutoff = cutoff.min(deadline);
        }
        let mut dsts = HashSet::new();
        dsts.insert(first.envelope.dst.0);
        let mut batch = vec![state.record_delivery(first)];
        while let Some(next) = state.queue.peek() {
            if next.deliver_at >= cutoff || !dsts.insert(next.envelope.dst.0) {
                break;
            }
            let event = state.queue.pop().expect("peeked event");
            batch.push(state.record_delivery(event));
        }
        SimFrontier::Deliver(batch)
    }

    /// Re-count one parked agent as runnable (scheduler side: called for
    /// every buffered wake before the reply is actually sent, so the
    /// quiescence count can never under-report a running application
    /// thread).
    pub fn agent_unblocked(&self) {
        let mut state = self.core.state.lock().unwrap_or_else(|e| e.into_inner());
        state.active += 1;
    }

    /// Count one application agent as finished for good (same counter the
    /// endpoints report into; offered on the fabric so run guards do not
    /// need to hold an endpoint).
    pub fn agent_finished(&self) {
        let mut state = self.core.state.lock().unwrap_or_else(|e| e.into_inner());
        state.active = state
            .active
            .checked_sub(1)
            .expect("sim agent parked more often than it ran");
        state.finished += 1;
        if state.active == 0 {
            self.core.quiescent.notify_all();
        }
    }

    /// Messages sent so far.
    pub fn sent_count(&self) -> u64 {
        self.core
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .sent
    }

    /// `(sent, delivered, dropped, still queued)` message counts. Every
    /// send ends up in exactly one of the last three buckets, so at
    /// teardown `sent == delivered + dropped` and `queued == 0`.
    pub fn counters(&self) -> (u64, u64, u64, usize) {
        let state = self.core.state.lock().unwrap_or_else(|e| e.into_inner());
        (
            state.sent,
            state.delivered,
            state.dropped,
            state.queue.len(),
        )
    }

    /// The messages dropped so far, in drop order (a snapshot; the run's
    /// full drop history also rides on [`SimFabric::take_trace`]).
    pub fn drops(&self) -> Vec<DropRecord> {
        self.core
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drops
            .clone()
    }

    /// Take the delivery trace recorded so far (leaves an empty trace).
    ///
    /// Drop records are canonicalised to `(sent_at, src, dst, link_seq)`
    /// order and renumbered: drops are recorded at *send* time, and send
    /// interleaving across nodes is the one thing that is not a pure
    /// function of the seed (several application threads — or, under a
    /// frontier scheduler, several handler workers — may send
    /// concurrently). The canonical key makes the drop half of the trace
    /// seed-pure again without losing any information.
    pub fn take_trace(&self) -> DeliveryTrace {
        let mut state = self.core.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut drops = std::mem::take(&mut state.drops);
        drops.sort_by_key(|d| (d.sent_at, d.src.0, d.dst.0, d.link_seq));
        for (seq, drop) in drops.iter_mut().enumerate() {
            drop.seq = seq as u64;
        }
        DeliveryTrace {
            records: std::mem::take(&mut state.trace),
            drops,
        }
    }
}

impl<M: Send> SimEndpoint<M> {
    /// The node this endpoint belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of nodes reachable through this endpoint (including itself).
    pub fn num_nodes(&self) -> usize {
        self.core.num_nodes
    }

    /// Send `payload` of `payload_bytes` bytes to `dst` at virtual time
    /// `sent_at`. The scheduled delivery time is the Hockney arrival plus
    /// the seeded perturbation delays, clamped so deliveries on this link
    /// stay in send order. Returns the scheduled delivery time.
    ///
    /// # Panics
    /// Panics if `dst` is out of range.
    pub fn send(
        &self,
        dst: NodeId,
        category: MsgCategory,
        payload_bytes: u64,
        sent_at: SimTime,
        payload: M,
    ) -> SimTime {
        assert!(
            dst.index() < self.core.num_nodes,
            "destination {dst} out of range"
        );
        let wire_bytes = payload_bytes + MESSAGE_HEADER_BYTES;
        let base = self.core.params.hockney.latency(wire_bytes);
        self.core.stats.record(self.node, category, wire_bytes);
        let mut state = self.core.state.lock().unwrap_or_else(|e| e.into_inner());
        let seed = state.seed;
        let src = self.node;
        // Split-borrow: the perturbation stack and the link map live side by
        // side in the state.
        let state = &mut *state;
        let link = state.links.entry((src.0, dst.0)).or_insert_with(|| {
            // One private SplitMix64 stream per directed link, derived from
            // the fabric seed: the draws a link sees depend only on its own
            // send sequence, never on cross-link send interleaving.
            let link_id = (u64::from(src.0) << 16) | u64::from(dst.0);
            LinkState {
                rng: SmallRng::seed_from_u64(
                    seed ^ link_id.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1),
                ),
                next_seq: 0,
                last_deliver: SimTime::ZERO,
            }
        });
        // Loss is decided before the delay draws: a dropped message
        // consumes its link_seq (so the gap is visible and attributable)
        // but no delay variates and no FIFO-clamp update.
        if let Some(reason) = state.loss.drops(src, dst, sent_at, &mut link.rng) {
            let link_seq = link.next_seq;
            link.next_seq += 1;
            state.sent += 1;
            let seq = state.dropped;
            state.dropped += 1;
            state.drops.push(DropRecord {
                seq,
                src,
                dst,
                category,
                wire_bytes,
                sent_at,
                link_seq,
                reason,
            });
            return sent_at;
        }
        let extra: SimDuration = state
            .perturbations
            .iter_mut()
            .map(|p| p.extra_delay(src, dst, base, &mut link.rng))
            .sum();
        // The FIFO clamp: a perturbed message never overtakes an earlier
        // message on its own link.
        let deliver_at = (sent_at + base + extra).max(link.last_deliver);
        link.last_deliver = deliver_at;
        let link_seq = link.next_seq;
        link.next_seq += 1;
        state.sent += 1;
        state.queue.push(SimEvent {
            deliver_at,
            link_seq,
            envelope: Envelope {
                src,
                dst,
                category,
                wire_bytes,
                sent_at,
                arrival: deliver_at,
                payload,
            },
        });
        deliver_at
    }

    /// Count this node's application agent as parked (about to block on a
    /// reply). Called *after* the triggering request has been sent.
    pub fn agent_blocked(&self) {
        self.park(false);
    }

    /// Re-count this node's application agent as runnable; the inverse of
    /// [`SimEndpoint::agent_blocked`], used by app-stack local deliveries
    /// (the matching park follows immediately).
    pub fn agent_unblocked(&self) {
        let mut state = self.core.state.lock().unwrap_or_else(|e| e.into_inner());
        state.active += 1;
    }

    /// Count this node's application agent as finished for good.
    pub fn agent_finished(&self) {
        self.park(true);
    }

    fn park(&self, finished: bool) {
        let mut state = self.core.state.lock().unwrap_or_else(|e| e.into_inner());
        state.active = state
            .active
            .checked_sub(1)
            .expect("sim agent parked more often than it ran");
        if finished {
            state.finished += 1;
        }
        if state.active == 0 {
            self.core.quiescent.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(config: SimConfig) -> SimFabric<u32> {
        SimFabric::new(
            3,
            NetworkParams::fast_ethernet(),
            StatsCollector::new(),
            config,
        )
    }

    /// Drive a fixed little exchange and return the trace: three messages
    /// from two sources, all agents parked in between.
    fn run_exchange(config: SimConfig) -> DeliveryTrace {
        let fab = fabric(config);
        let eps = fab.endpoints();
        // Sends happen "concurrently" at the same virtual time.
        eps[0].send(NodeId(2), MsgCategory::Control, 64, SimTime::ZERO, 1);
        eps[1].send(NodeId(2), MsgCategory::Control, 64, SimTime::ZERO, 2);
        eps[0].send(NodeId(2), MsgCategory::Control, 64, SimTime::ZERO, 3);
        for ep in &eps {
            ep.agent_finished();
        }
        loop {
            match fab.next_step() {
                SimStep::Deliver(_) => {}
                SimStep::Drained => break,
                SimStep::Stalled => panic!("exchange cannot stall"),
            }
        }
        let (sent, delivered, dropped, queued) = fab.counters();
        assert_eq!(sent, 3);
        assert_eq!(delivered + dropped, 3);
        assert_eq!(queued, 0);
        fab.take_trace()
    }

    #[test]
    fn same_seed_same_trace_bit_identical() {
        let a = run_exchange(SimConfig::perturbed(7));
        let b = run_exchange(SimConfig::perturbed(7));
        assert_eq!(a, b);
        assert_eq!(a.checksum(), b.checksum());
    }

    #[test]
    fn calm_config_delivers_in_pure_hockney_order() {
        let t = run_exchange(SimConfig::calm(0));
        // Equal send times and sizes: ties break on (src, dst, link_seq).
        assert_eq!(t.order_signature(), vec![(0, 2, 0), (0, 2, 1), (1, 2, 0)]);
        assert_eq!(t.per_link_fifo_violation(), None);
    }

    #[test]
    fn per_link_fifo_survives_heavy_perturbation() {
        for seed in 0..16 {
            let fab = fabric(SimConfig::stormy(seed));
            let eps = fab.endpoints();
            for i in 0..50u32 {
                eps[0].send(NodeId(1), MsgCategory::Diff, 256, SimTime::ZERO, i);
            }
            for ep in &eps {
                ep.agent_finished();
            }
            let mut payloads = Vec::new();
            loop {
                match fab.next_step() {
                    SimStep::Deliver(env) => payloads.push(env.payload),
                    SimStep::Drained => break,
                    SimStep::Stalled => panic!("cannot stall"),
                }
            }
            assert_eq!(
                payloads,
                (0..50).collect::<Vec<_>>(),
                "seed {seed}: same-link messages must stay in send order"
            );
            assert_eq!(fab.take_trace().per_link_fifo_violation(), None);
        }
    }

    #[test]
    fn distinct_seeds_can_reorder_across_links() {
        let base = run_exchange(SimConfig::perturbed(1));
        let mut diverged = false;
        for seed in 2..12 {
            if run_exchange(SimConfig::perturbed(seed)).order_signature() != base.order_signature()
            {
                diverged = true;
                break;
            }
        }
        assert!(
            diverged,
            "ten perturbation seeds should produce at least one different delivery order"
        );
    }

    #[test]
    fn quiescence_gates_delivery() {
        let fab: SimFabric<u8> = SimFabric::new(
            1,
            NetworkParams::ideal(),
            StatsCollector::new(),
            SimConfig::calm(0),
        );
        let eps = fab.endpoints();
        eps[0].send(NodeId(0), MsgCategory::Control, 0, SimTime::ZERO, 9);
        // The single agent is still active: next_step would block. Park it
        // from another thread after a moment and observe delivery.
        let ep = SimEndpoint {
            core: Arc::clone(&eps[0].core),
            node: NodeId(0),
        };
        let waiter = std::thread::spawn(move || match fab.next_step() {
            SimStep::Deliver(env) => env.payload,
            _ => panic!("expected a delivery"),
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        ep.agent_finished();
        assert_eq!(waiter.join().unwrap(), 9);
    }

    #[test]
    fn stalled_vs_drained() {
        let fab: SimFabric<u8> = SimFabric::new(
            2,
            NetworkParams::ideal(),
            StatsCollector::new(),
            SimConfig::calm(0),
        );
        let eps = fab.endpoints();
        // One agent parks (blocked), one finishes: quiescent but not done.
        eps[0].agent_blocked();
        eps[1].agent_finished();
        assert!(matches!(fab.next_step(), SimStep::Stalled));
        // The blocked agent is woken and finishes: drained.
        eps[0].agent_unblocked();
        eps[0].agent_finished();
        assert!(matches!(fab.next_step(), SimStep::Drained));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sending_to_unknown_node_panics() {
        let fab: SimFabric<u8> = SimFabric::new(
            2,
            NetworkParams::ideal(),
            StatsCollector::new(),
            SimConfig::calm(0),
        );
        fab.endpoints()[0].send(NodeId(7), MsgCategory::Control, 0, SimTime::ZERO, 0);
    }

    /// Send `n` messages 0 → 1 under `config` and return the trace.
    fn run_lossy(config: SimConfig, n: u32) -> DeliveryTrace {
        let fab = fabric(config);
        let eps = fab.endpoints();
        for i in 0..n {
            eps[0].send(NodeId(1), MsgCategory::Diff, 128, SimTime::ZERO, i);
        }
        for ep in &eps {
            ep.agent_finished();
        }
        loop {
            match fab.next_step() {
                SimStep::Deliver(_) => {}
                SimStep::Drained => break,
                SimStep::Stalled => panic!("cannot stall"),
            }
        }
        let (sent, delivered, dropped, queued) = fab.counters();
        assert_eq!(sent, u64::from(n));
        assert_eq!(delivered + dropped, u64::from(n));
        assert_eq!(queued, 0);
        fab.take_trace()
    }

    #[test]
    fn random_drops_are_seeded_and_replayable() {
        let config = SimConfig::calm(11).with_drop_rate(0.1);
        let a = run_lossy(config, 200);
        let b = run_lossy(config, 200);
        assert!(!a.drops.is_empty(), "10% of 200 sends should drop some");
        assert!(a.drops.len() < 200, "and deliver the rest");
        assert_eq!(a, b, "same seed must replay drops bit-identically");
        assert_eq!(a.checksum(), b.checksum());
        assert!(a.drops.iter().all(|d| d.reason == DropReason::Random));
        // A different seed picks different victims.
        let c = run_lossy(SimConfig::calm(12).with_drop_rate(0.1), 200);
        assert_ne!(
            a.drops.iter().map(|d| d.link_seq).collect::<Vec<_>>(),
            c.drops.iter().map(|d| d.link_seq).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn fifo_check_tolerates_drop_gaps_but_not_reorders() {
        let t = run_lossy(SimConfig::calm(11).with_drop_rate(0.1), 200);
        assert_eq!(t.per_link_fifo_violation(), None);
        // Strip the drop records: the gaps become unexplained violations.
        let stripped = DeliveryTrace {
            records: t.records.clone(),
            drops: Vec::new(),
        };
        assert!(stripped.per_link_fifo_violation().is_some());
    }

    #[test]
    fn partition_window_cuts_cross_side_links_then_heals() {
        let spec = PartitionSpec {
            from: SimTime::ZERO,
            until: SimTime::from_micros(100.0),
            mask: 0b010, // node 1 alone on side B
        };
        let fab = fabric(SimConfig::calm(0).with_partition(spec));
        let eps = fab.endpoints();
        let inside = SimTime::from_micros(50.0);
        let after = SimTime::from_micros(100.0);
        eps[0].send(NodeId(1), MsgCategory::Control, 0, inside, 1); // cut
        eps[0].send(NodeId(2), MsgCategory::Control, 0, inside, 2); // same side
        eps[1].send(NodeId(0), MsgCategory::Control, 0, inside, 3); // cut
        eps[0].send(NodeId(1), MsgCategory::Control, 0, after, 4); // healed
        for ep in &eps {
            ep.agent_finished();
        }
        let mut delivered = Vec::new();
        loop {
            match fab.next_step() {
                SimStep::Deliver(env) => delivered.push(env.payload),
                SimStep::Drained => break,
                SimStep::Stalled => panic!("cannot stall"),
            }
        }
        delivered.sort_unstable();
        assert_eq!(delivered, vec![2, 4]);
        let t = fab.take_trace();
        assert_eq!(t.drops.len(), 2);
        assert!(t.drops.iter().all(|d| d.reason == DropReason::Partition));
        assert_eq!(t.per_link_fifo_violation(), None);
    }

    #[test]
    fn paused_node_is_cut_both_ways_but_self_sends_survive() {
        let spec = PauseSpec {
            node: 1,
            from: SimTime::ZERO,
            until: SimTime::from_micros(100.0),
        };
        let fab = fabric(SimConfig::calm(0).with_pause(spec));
        let eps = fab.endpoints();
        let inside = SimTime::from_micros(10.0);
        eps[0].send(NodeId(1), MsgCategory::Control, 0, inside, 1); // to paused
        eps[1].send(NodeId(2), MsgCategory::Control, 0, inside, 2); // from paused
        eps[1].send(NodeId(1), MsgCategory::Control, 0, inside, 3); // self: exempt
        eps[0].send(NodeId(2), MsgCategory::Control, 0, inside, 4); // uninvolved
        for ep in &eps {
            ep.agent_finished();
        }
        let mut delivered = Vec::new();
        loop {
            match fab.next_step() {
                SimStep::Deliver(env) => delivered.push(env.payload),
                SimStep::Drained => break,
                SimStep::Stalled => panic!("cannot stall"),
            }
        }
        delivered.sort_unstable();
        assert_eq!(delivered, vec![3, 4]);
        let t = fab.take_trace();
        assert!(t.drops.iter().all(|d| d.reason == DropReason::Pause));
    }

    #[test]
    fn lossless_presets_are_not_lossy_and_lossy_is() {
        assert!(!SimConfig::calm(1).is_lossy());
        assert!(!SimConfig::perturbed(1).is_lossy());
        assert!(!SimConfig::stormy(1).is_lossy());
        assert!(SimConfig::lossy(1).is_lossy());
        assert!(SimConfig::calm(1).with_drop_rate(0.5).is_lossy());
    }

    #[test]
    fn presets_default_to_the_sequential_reference_scheduler() {
        assert_eq!(SimConfig::calm(1).workers, 1);
        assert_eq!(SimConfig::perturbed(1).workers, 1);
        assert_eq!(SimConfig::stormy(1).workers, 1);
        assert_eq!(SimConfig::lossy(1).workers, 1);
        assert_eq!(SimConfig::perturbed(1).with_workers(4).workers, 4);
    }

    /// Drain a fabric through the frontier scheduler, returning the
    /// frontier sizes in pop order.
    fn drain_frontiers(fab: &SimFabric<u32>) -> Vec<usize> {
        let mut sizes = Vec::new();
        loop {
            match fab.next_frontier(None) {
                SimFrontier::Deliver(batch) => sizes.push(batch.len()),
                SimFrontier::Drained => break,
                SimFrontier::Stalled => panic!("cannot stall"),
            }
        }
        sizes
    }

    #[test]
    fn same_tick_same_destination_events_are_never_co_scheduled() {
        // Two sources hit node 2 at the same virtual instant: identical
        // deliver_at, identical dst. The frontier must serialize them —
        // first (0→2), then (1→2) — never batch them.
        let fab = fabric(SimConfig::calm(0));
        let eps = fab.endpoints();
        eps[0].send(NodeId(2), MsgCategory::Control, 64, SimTime::ZERO, 1);
        eps[1].send(NodeId(2), MsgCategory::Control, 64, SimTime::ZERO, 2);
        for ep in &eps {
            ep.agent_finished();
        }
        let trace_before = {
            let state = fab.core.state.lock().unwrap_or_else(|e| e.into_inner());
            let mut keys: Vec<_> = state.queue.iter().map(|e| e.key()).collect();
            keys.sort();
            keys
        };
        assert_eq!(
            trace_before[0].0, trace_before[1].0,
            "collision seed must tie on deliver_at"
        );
        assert_eq!(drain_frontiers(&fab), vec![1, 1]);
        assert_eq!(
            fab.take_trace().order_signature(),
            vec![(0, 2, 0), (1, 2, 0)]
        );
    }

    #[test]
    fn same_tick_distinct_destinations_form_one_frontier() {
        let fab = fabric(SimConfig::calm(0));
        let eps = fab.endpoints();
        eps[0].send(NodeId(1), MsgCategory::Control, 64, SimTime::ZERO, 1);
        eps[0].send(NodeId(2), MsgCategory::Control, 64, SimTime::ZERO, 2);
        for ep in &eps {
            ep.agent_finished();
        }
        assert_eq!(drain_frontiers(&fab), vec![2]);
    }

    #[test]
    fn frontier_trace_is_bit_identical_to_sequential_trace() {
        for seed in [3, 7, 11] {
            let sequential = run_exchange(SimConfig::perturbed(seed));
            let fab = fabric(SimConfig::perturbed(seed));
            let eps = fab.endpoints();
            eps[0].send(NodeId(2), MsgCategory::Control, 64, SimTime::ZERO, 1);
            eps[1].send(NodeId(2), MsgCategory::Control, 64, SimTime::ZERO, 2);
            eps[0].send(NodeId(2), MsgCategory::Control, 64, SimTime::ZERO, 3);
            for ep in &eps {
                ep.agent_finished();
            }
            drain_frontiers(&fab);
            let parallel = fab.take_trace();
            assert_eq!(sequential, parallel, "seed {seed}");
            assert_eq!(sequential.checksum(), parallel.checksum());
        }
    }

    #[test]
    fn drop_records_are_canonicalised_in_the_trace() {
        let t = run_lossy(SimConfig::calm(11).with_drop_rate(0.1), 200);
        let mut keys: Vec<_> = t
            .drops
            .iter()
            .map(|d| (d.sent_at, d.src.0, d.dst.0, d.link_seq))
            .collect();
        let sorted = {
            let mut s = keys.clone();
            s.sort();
            s
        };
        assert_eq!(keys, sorted, "drops must come out in canonical order");
        keys.dedup();
        assert_eq!(keys.len(), t.drops.len());
        for (i, d) in t.drops.iter().enumerate() {
            assert_eq!(d.seq, i as u64, "drop seq must match canonical order");
        }
    }
}
