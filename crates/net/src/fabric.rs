//! The channel-based full-mesh fabric connecting node threads.
//!
//! Each simulated cluster node owns one [`Endpoint`]. Sending stamps the
//! envelope with the Hockney-model arrival time, records statistics, and
//! enqueues it on the destination's unbounded channel; the destination's
//! protocol server thread drains the channel. The fabric performs no
//! protocol logic.

use crate::category::MsgCategory;
use crate::envelope::{Envelope, MESSAGE_HEADER_BYTES};
use crate::stats::StatsCollector;
use dsm_model::{NetworkParams, SimTime};
use dsm_objspace::NodeId;
use dsm_util::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// A hook the fabric fires after enqueuing a message: `wake(dst)` marks the
/// destination node runnable so an event-driven server (the runtime's
/// executor) can react to the arrival instead of polling for it.
///
/// Implementations must be cheap and non-blocking — the hook runs on the
/// sender's thread, inside `send`, after the envelope is already queued.
/// That ordering is the no-lost-wakeup contract: by the time `wake` fires,
/// a drain of the destination's queue is guaranteed to see the message.
pub trait WakeNotifier: Send + Sync {
    /// Mark `node` as having (possibly) runnable protocol work.
    fn wake(&self, node: NodeId);
}

/// Shared, late-bound slot for a [`WakeNotifier`].
///
/// The fabric is built before the executor that wants the notifications
/// exists, so every endpoint carries a clone of this hub and the runtime
/// installs the notifier once the executor is up. Wakes fired before
/// installation are dropped — installers must schedule every node once
/// after installing to cover that window.
#[derive(Clone, Default)]
pub struct WakeHub {
    slot: Arc<OnceLock<Arc<dyn WakeNotifier>>>,
}

impl WakeHub {
    /// Create an empty hub (wakes are no-ops until [`install`](Self::install)).
    pub fn new() -> Self {
        WakeHub::default()
    }

    /// Install the notifier. The first installation wins; later calls are
    /// ignored (the hub is shared by every endpoint clone, and the runtime
    /// installs exactly once per run).
    pub fn install(&self, notifier: Arc<dyn WakeNotifier>) {
        let _ = self.slot.set(notifier);
    }

    /// Fire the notifier for `node`, if one is installed.
    pub fn wake(&self, node: NodeId) {
        if let Some(notifier) = self.slot.get() {
            notifier.wake(node);
        }
    }

    /// Whether a notifier has been installed.
    pub fn is_installed(&self) -> bool {
        self.slot.get().is_some()
    }
}

impl std::fmt::Debug for WakeHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WakeHub")
            .field("installed", &self.is_installed())
            .finish()
    }
}

/// Factory for the endpoints of an `n`-node cluster.
#[derive(Debug)]
pub struct Fabric<M> {
    endpoints: Vec<Endpoint<M>>,
    wake_hub: WakeHub,
}

/// One node's attachment to the fabric.
#[derive(Debug)]
pub struct Endpoint<M> {
    node: NodeId,
    params: NetworkParams,
    senders: Vec<Sender<Envelope<M>>>,
    receiver: Receiver<Envelope<M>>,
    stats: StatsCollector,
    wake_hub: WakeHub,
}

impl<M: Send> Fabric<M> {
    /// Build a fully connected fabric for `num_nodes` nodes with the given
    /// network parameters and a shared statistics collector.
    ///
    /// # Panics
    /// Panics if `num_nodes` is zero.
    pub fn new(num_nodes: usize, params: NetworkParams, stats: StatsCollector) -> Self {
        assert!(num_nodes > 0, "cluster must have at least one node");
        let mut senders = Vec::with_capacity(num_nodes);
        let mut receivers = Vec::with_capacity(num_nodes);
        for _ in 0..num_nodes {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let wake_hub = WakeHub::new();
        let endpoints = receivers
            .into_iter()
            .enumerate()
            .map(|(i, receiver)| Endpoint {
                node: NodeId::from(i),
                params,
                senders: senders.clone(),
                receiver,
                stats: stats.clone(),
                wake_hub: wake_hub.clone(),
            })
            .collect();
        Fabric {
            endpoints,
            wake_hub,
        }
    }

    /// Number of nodes in the fabric.
    pub fn num_nodes(&self) -> usize {
        self.endpoints.len()
    }

    /// The hub shared by every endpoint of this fabric. The runtime keeps a
    /// clone across [`into_endpoints`](Self::into_endpoints) and installs
    /// the executor's notifier into it.
    pub fn wake_hub(&self) -> WakeHub {
        self.wake_hub.clone()
    }

    /// Take ownership of all endpoints (one per node, in node order); called
    /// once by the runtime when spawning node threads.
    pub fn into_endpoints(self) -> Vec<Endpoint<M>> {
        self.endpoints
    }
}

impl<M: Send> Endpoint<M> {
    /// The node this endpoint belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of nodes reachable through this endpoint (including itself).
    pub fn num_nodes(&self) -> usize {
        self.senders.len()
    }

    /// The network parameters used for latency stamping.
    pub fn params(&self) -> &NetworkParams {
        &self.params
    }

    /// Send `payload` of `payload_bytes` bytes to `dst`. `sent_at` is the
    /// sender's current virtual time; the arrival stamp adds the Hockney
    /// latency for the wire size (payload + fixed header).
    ///
    /// Returns the arrival time so the caller can account for blocking
    /// round trips.
    ///
    /// # Panics
    /// Panics if `dst` is out of range or if the destination endpoint has
    /// been dropped (the cluster is shutting down while messages are still
    /// being sent — a protocol bug).
    pub fn send(
        &self,
        dst: NodeId,
        category: MsgCategory,
        payload_bytes: u64,
        sent_at: SimTime,
        payload: M,
    ) -> SimTime {
        let wire_bytes = payload_bytes + MESSAGE_HEADER_BYTES;
        let arrival = sent_at + self.params.hockney.latency(wire_bytes);
        self.stats.record(self.node, category, wire_bytes);
        let envelope = Envelope {
            src: self.node,
            dst,
            category,
            wire_bytes,
            sent_at,
            arrival,
            payload,
        };
        let delivered = self
            .senders
            .get(dst.index())
            .unwrap_or_else(|| panic!("destination {dst} out of range"))
            .send(envelope)
            .is_ok();
        assert!(
            delivered,
            "destination endpoint dropped while cluster is running"
        );
        // Enqueue-before-wake: the destination is marked runnable only once
        // a drain of its queue is guaranteed to find the envelope.
        self.wake_hub.wake(dst);
        arrival
    }

    /// Blocking receive of the next incoming message.
    ///
    /// Returns `None` when every sender (i.e. every other endpoint clone)
    /// has been dropped, which the runtime uses for orderly shutdown.
    pub fn recv(&self) -> Option<Envelope<M>> {
        self.receiver.recv()
    }

    /// Receive with a real-time timeout; used by protocol server loops so
    /// they can poll a shutdown flag even when no messages arrive.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Envelope<M>, RecvTimeoutError> {
        self.receiver.recv_timeout(timeout)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        self.receiver.try_recv()
    }

    /// Number of messages currently queued for this node.
    pub fn pending(&self) -> usize {
        self.receiver.len()
    }

    /// Deepest this node's inbound queue has ever been.
    pub fn queue_high_watermark(&self) -> usize {
        self.receiver.max_len()
    }

    /// The wake hub shared by every endpoint of the owning fabric.
    pub fn wake_hub(&self) -> WakeHub {
        self.wake_hub.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fabric_builds_one_endpoint_per_node() {
        let fabric: Fabric<u32> = Fabric::new(4, NetworkParams::ideal(), StatsCollector::new());
        assert_eq!(fabric.num_nodes(), 4);
        let eps = fabric.into_endpoints();
        assert_eq!(eps.len(), 4);
        for (i, ep) in eps.iter().enumerate() {
            assert_eq!(ep.node(), NodeId::from(i));
            assert_eq!(ep.num_nodes(), 4);
        }
    }

    #[test]
    fn send_and_receive_between_nodes() {
        let stats = StatsCollector::new();
        let fabric: Fabric<String> = Fabric::new(2, NetworkParams::fast_ethernet(), stats.clone());
        let mut eps = fabric.into_endpoints();
        let ep1 = eps.pop().unwrap();
        let ep0 = eps.pop().unwrap();

        let arrival = ep0.send(
            NodeId(1),
            MsgCategory::ObjRequest,
            8,
            SimTime::from_micros(5.0),
            "hello".to_string(),
        );
        let env = ep1.recv().expect("message should arrive");
        assert_eq!(env.src, NodeId(0));
        assert_eq!(env.dst, NodeId(1));
        assert_eq!(env.payload, "hello");
        assert_eq!(env.arrival, arrival);
        assert!(
            env.arrival > env.sent_at,
            "Hockney latency must be positive"
        );
        assert_eq!(env.wire_bytes, 8 + MESSAGE_HEADER_BYTES);

        let snap = stats.snapshot();
        assert_eq!(snap.total_messages(), 1);
        assert_eq!(snap.total_bytes(), 8 + MESSAGE_HEADER_BYTES);
    }

    #[test]
    fn self_send_is_allowed() {
        // The protocol never needs it, but the fabric supports loop-back
        // delivery (used by some tests).
        let fabric: Fabric<u8> = Fabric::new(1, NetworkParams::ideal(), StatsCollector::new());
        let ep = fabric.into_endpoints().pop().unwrap();
        ep.send(NodeId(0), MsgCategory::Control, 0, SimTime::ZERO, 9);
        assert_eq!(ep.recv().unwrap().payload, 9);
    }

    #[test]
    fn cross_thread_delivery() {
        let fabric: Fabric<u64> = Fabric::new(2, NetworkParams::ideal(), StatsCollector::new());
        let mut eps = fabric.into_endpoints();
        let ep1 = eps.pop().unwrap();
        let ep0 = eps.pop().unwrap();
        let handle = thread::spawn(move || {
            let mut sum = 0;
            for _ in 0..100 {
                sum += ep1.recv().unwrap().payload;
            }
            sum
        });
        for i in 0..100u64 {
            ep0.send(NodeId(1), MsgCategory::Control, 8, SimTime::ZERO, i);
        }
        assert_eq!(handle.join().unwrap(), (0..100).sum::<u64>());
    }

    #[test]
    fn try_recv_and_pending() {
        let fabric: Fabric<u8> = Fabric::new(2, NetworkParams::ideal(), StatsCollector::new());
        let mut eps = fabric.into_endpoints();
        let ep1 = eps.pop().unwrap();
        let ep0 = eps.pop().unwrap();
        assert!(ep1.try_recv().is_none());
        assert_eq!(ep1.pending(), 0);
        ep0.send(NodeId(1), MsgCategory::Control, 0, SimTime::ZERO, 1);
        ep0.send(NodeId(1), MsgCategory::Control, 0, SimTime::ZERO, 2);
        assert_eq!(ep1.pending(), 2);
        assert_eq!(ep1.try_recv().unwrap().payload, 1);
        assert_eq!(ep1.try_recv().unwrap().payload, 2);
    }

    #[test]
    fn wake_hub_fires_destination_after_enqueue() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        struct Recorder {
            wakes: AtomicUsize,
            pending_at_wake: AtomicUsize,
            ep1_pending: Arc<dyn Fn() -> usize + Send + Sync>,
        }
        impl WakeNotifier for Recorder {
            fn wake(&self, node: NodeId) {
                assert_eq!(node, NodeId(1));
                self.wakes.fetch_add(1, Ordering::SeqCst);
                self.pending_at_wake
                    .fetch_max((self.ep1_pending)(), Ordering::SeqCst);
            }
        }

        let fabric: Fabric<u8> = Fabric::new(2, NetworkParams::ideal(), StatsCollector::new());
        let hub = fabric.wake_hub();
        let eps: Vec<_> = fabric.into_endpoints().into_iter().map(Arc::new).collect();

        // A wake before installation is silently dropped.
        eps[0].send(NodeId(1), MsgCategory::Control, 0, SimTime::ZERO, 1);

        let ep1 = Arc::clone(&eps[1]);
        let recorder = Arc::new(Recorder {
            wakes: AtomicUsize::new(0),
            pending_at_wake: AtomicUsize::new(0),
            ep1_pending: Arc::new(move || ep1.pending()),
        });
        hub.install(Arc::clone(&recorder) as Arc<dyn WakeNotifier>);
        assert!(hub.is_installed());

        eps[0].send(NodeId(1), MsgCategory::Control, 0, SimTime::ZERO, 2);
        assert_eq!(recorder.wakes.load(Ordering::SeqCst), 1);
        // Enqueue-before-wake: the message was visible when the hook ran.
        assert!(recorder.pending_at_wake.load(Ordering::SeqCst) >= 2);
        assert_eq!(eps[1].queue_high_watermark(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sending_to_unknown_node_panics() {
        let fabric: Fabric<u8> = Fabric::new(2, NetworkParams::ideal(), StatsCollector::new());
        let eps = fabric.into_endpoints();
        eps[0].send(NodeId(5), MsgCategory::Control, 0, SimTime::ZERO, 0);
    }
}
