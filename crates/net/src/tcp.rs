//! A real multi-process TCP transport behind the same endpoint seam as the
//! in-process fabrics.
//!
//! # Topology and ordering
//!
//! Every node binds one `TcpListener` on an ephemeral `127.0.0.1` port and
//! learns every peer's address before the run starts (the node registry is
//! the join-time membership exchange). Each ordered pair of nodes gets a
//! **dedicated connection**: node `a` *dials* node `b` and uses that
//! connection exclusively for `a → b` traffic, while `b`'s accept loop
//! turns the same connection into a read-only `b ← a` link. One writer
//! thread per outgoing link (fed by an in-order queue of pre-encoded
//! frames) and one reader thread per incoming link give the protocol its
//! documented **per-link FIFO** guarantee: frames leave in send order on a
//! single TCP stream and are decoded sequentially at the far end.
//!
//! # Modeled time on real sockets
//!
//! The envelope's modeled fields (`wire_bytes`, `sent_at`, `arrival`)
//! travel in the frame, so the receiver merges the *sender's* virtual
//! clock exactly as the loopback fabric does — protocol results are
//! fingerprint-identical across fabrics even though real socket latency
//! differs. `StatsCollector` records the same modeled `wire_bytes` at send
//! time; fabric-internal frames (hello, heartbeat, leave) are **not**
//! recorded there, so `NetworkStats` stays comparable across fabrics.
//! Actual socket bytes are tracked separately in [`WireCounters`].
//!
//! # Membership and liveness
//!
//! A per-endpoint heartbeat thread emits heartbeat frames on every
//! outgoing link at `heartbeat_interval`; readers feed every received
//! frame into a [`LivenessTracker`],
//! so each node maintains an alive/suspect/dead view of its peers
//! (surfaced via [`TcpEndpoint::membership`], reported by the runtime, not
//! yet acted on by the protocol).
//!
//! # Teardown
//!
//! Shutdown is a single-phase **leave** protocol: once a node's server has
//! drained, it announces a leave frame on every link (FIFO makes it the
//! link's final frame) and waits until it has heard every peer's leave and
//! emptied its inbound queue. [`TcpEndpoint::finish`] then stops the
//! heartbeat thread, closes the write side (flushing queued frames) and
//! joins all socket threads with bounded timeouts — a hung peer cannot
//! wedge teardown for longer than the configured I/O timeout.

use crate::category::MsgCategory;
use crate::envelope::{Envelope, MESSAGE_HEADER_BYTES};
use crate::fabric::WakeNotifier;
use crate::membership::{LivenessTracker, MembershipView};
use crate::stats::StatsCollector;
use crate::wire::{
    decode_frame, decode_hello, encode_control, encode_envelope, encode_hello, FrameKind, Hello,
    WireCodec, WireError, FRAME_HEADER_BYTES, MAX_FRAME_BYTES,
};
use dsm_model::{NetworkParams, SimTime};
use dsm_objspace::NodeId;
use dsm_util::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use dsm_util::sync::Mutex;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Tuning knobs of the TCP fabric: heartbeat cadence, liveness thresholds
/// and socket timeouts. All timeouts are bounded so a hung peer degrades
/// the membership view instead of wedging the run.
#[derive(Debug, Clone, PartialEq)]
pub struct TcpConfig {
    /// How often each node heartbeats every outgoing link.
    pub heartbeat_interval: Duration,
    /// Silence after which a peer is classified suspect.
    pub suspect_after: Duration,
    /// Silence after which a peer is classified dead.
    pub dead_after: Duration,
    /// Deadline for the join phase (dialing peers, accepting their dials).
    pub connect_timeout: Duration,
    /// Socket read timeout; also bounds how long teardown waits per thread.
    pub io_timeout: Duration,
    /// This process's incarnation number, carried in the hello handshake.
    /// A restarted node must present a strictly greater incarnation than
    /// its previous life to pass the liveness tracker's rejoin fence; a
    /// first launch uses the default `0`.
    pub incarnation: u32,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            heartbeat_interval: Duration::from_millis(25),
            suspect_after: Duration::from_millis(500),
            dead_after: Duration::from_secs(2),
            connect_timeout: Duration::from_secs(10),
            io_timeout: Duration::from_millis(25),
            incarnation: 0,
        }
    }
}

impl TcpConfig {
    /// Aggressively short heartbeat/liveness timings for tests that drive
    /// alive → suspect → dead transitions without sleeping for seconds.
    pub fn fast_liveness() -> Self {
        TcpConfig {
            heartbeat_interval: Duration::from_millis(2),
            suspect_after: Duration::from_millis(50),
            dead_after: Duration::from_millis(150),
            connect_timeout: Duration::from_secs(5),
            io_timeout: Duration::from_millis(5),
            incarnation: 0,
        }
    }
}

/// Real socket-level traffic counters of one endpoint, kept separate from
/// the modeled [`NetworkStats`](crate::stats::NetworkStats) so the two can
/// be reconciled: modeled bytes/messages must match the stats collector
/// exactly, while socket bytes additionally include framing and
/// fabric-internal control traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireCounters {
    /// Payload (envelope) frames sent, including self-sends.
    pub payload_frames_sent: u64,
    /// Payload frames delivered into the inbound queue.
    pub payload_frames_delivered: u64,
    /// Modeled wire bytes (payload + modeled header) across sent payload
    /// frames — reconciles with `NetworkStats::total_bytes()`.
    pub modeled_bytes_sent: u64,
    /// Modeled wire bytes across delivered payload frames.
    pub modeled_bytes_delivered: u64,
    /// Fabric-internal frames sent (hello + leave).
    pub control_frames_sent: u64,
    /// Heartbeat frames sent.
    pub heartbeats_sent: u64,
    /// Raw bytes written to sockets (frames + length prefixes).
    pub socket_bytes_sent: u64,
    /// Raw bytes read from sockets.
    pub socket_bytes_received: u64,
}

#[derive(Debug, Default)]
struct Counters {
    payload_frames_sent: AtomicU64,
    payload_frames_delivered: AtomicU64,
    modeled_bytes_sent: AtomicU64,
    modeled_bytes_delivered: AtomicU64,
    control_frames_sent: AtomicU64,
    heartbeats_sent: AtomicU64,
    socket_bytes_sent: AtomicU64,
    socket_bytes_received: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> WireCounters {
        WireCounters {
            payload_frames_sent: self.payload_frames_sent.load(Ordering::Relaxed),
            payload_frames_delivered: self.payload_frames_delivered.load(Ordering::Relaxed),
            modeled_bytes_sent: self.modeled_bytes_sent.load(Ordering::Relaxed),
            modeled_bytes_delivered: self.modeled_bytes_delivered.load(Ordering::Relaxed),
            control_frames_sent: self.control_frames_sent.load(Ordering::Relaxed),
            heartbeats_sent: self.heartbeats_sent.load(Ordering::Relaxed),
            socket_bytes_sent: self.socket_bytes_sent.load(Ordering::Relaxed),
            socket_bytes_received: self.socket_bytes_received.load(Ordering::Relaxed),
        }
    }
}

/// State shared between an endpoint and its socket threads.
struct LinkShared<M: Send + 'static> {
    node: NodeId,
    epoch: Instant,
    tracker: Mutex<LivenessTracker>,
    counters: Counters,
    leaves_received: AtomicUsize,
    /// Per-peer leave flags: once a peer's leave frame has been read, its
    /// sockets may close at any moment, so write failures towards it are
    /// expected teardown noise rather than link degradation.
    peer_left: Box<[AtomicBool]>,
    reader_stop: AtomicBool,
    hb_stop: AtomicBool,
    hb_paused: AtomicBool,
    inbound_tx: Sender<Envelope<M>>,
    /// Late-bound wake hook: reader threads fire it towards the *owning*
    /// node after enqueuing a payload (and on leave frames, so a drained
    /// server re-evaluates its teardown condition) — the TCP analogue of
    /// the in-process fabric's [`crate::fabric::WakeHub`].
    notifier: OnceLock<Arc<dyn WakeNotifier>>,
}

impl<M: Send + 'static> LinkShared<M> {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Mark the owning node runnable, if a notifier is installed.
    fn wake_self(&self) {
        if let Some(notifier) = self.notifier.get() {
            notifier.wake(self.node);
        }
    }
}

/// A node's listener, created before addresses are exchanged. `bind` and
/// `connect` are split so a multi-process launcher can publish its local
/// address, gather the peers' addresses out of band, and only then connect.
pub struct TcpNodeBinding<M: Send + 'static> {
    node: NodeId,
    num_nodes: usize,
    params: NetworkParams,
    stats: StatsCollector,
    config: TcpConfig,
    listener: TcpListener,
    encode_env: fn(&Envelope<M>) -> Vec<u8>,
    decode_env: fn(&[u8]) -> Result<Envelope<M>, WireError>,
}

impl<M: Send + 'static> TcpNodeBinding<M> {
    /// Bind `node`'s listener on an ephemeral `127.0.0.1` port. The codec
    /// `C` fixes the payload wire format for the whole link.
    ///
    /// # Panics
    /// Panics if `num_nodes` is zero, `node` is out of range, or the
    /// cluster exceeds `u16` node ids (the wire header's address width).
    pub fn bind<C: WireCodec<M>>(
        node: NodeId,
        num_nodes: usize,
        params: NetworkParams,
        stats: StatsCollector,
        config: TcpConfig,
    ) -> io::Result<Self> {
        assert!(num_nodes > 0, "cluster must have at least one node");
        assert!(node.index() < num_nodes, "node {node} out of range");
        assert!(
            u16::try_from(num_nodes).is_ok(),
            "tcp fabric addresses nodes with u16 ids"
        );
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        Ok(TcpNodeBinding {
            node,
            num_nodes,
            params,
            stats,
            config,
            listener,
            encode_env: encode_envelope::<M, C>,
            decode_env: decode_envelope_fn::<M, C>,
        })
    }

    /// The bound local address to publish to peers.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Join the cluster: dial every peer (the outgoing links), accept every
    /// peer's dial (the incoming links), start writer/reader/heartbeat
    /// threads and return the live endpoint. `peer_addrs` must hold one
    /// address per node in node order; the entry at this node's own index
    /// is ignored.
    pub fn connect(self, peer_addrs: &[SocketAddr]) -> io::Result<TcpEndpoint<M>> {
        assert_eq!(
            peer_addrs.len(),
            self.num_nodes,
            "expected one address per node"
        );
        let (inbound_tx, inbound_rx) = unbounded();
        let peers: Vec<NodeId> = (0..self.num_nodes)
            .map(NodeId::from)
            .filter(|n| *n != self.node)
            .collect();
        let epoch = Instant::now();
        let shared = Arc::new(LinkShared {
            node: self.node,
            epoch,
            tracker: Mutex::new(LivenessTracker::new(
                self.node,
                peers.iter().copied(),
                self.config.suspect_after.as_millis() as u64,
                self.config.dead_after.as_millis() as u64,
                0,
            )),
            counters: Counters::default(),
            leaves_received: AtomicUsize::new(0),
            peer_left: (0..self.num_nodes)
                .map(|_| AtomicBool::new(false))
                .collect(),
            reader_stop: AtomicBool::new(false),
            hb_stop: AtomicBool::new(false),
            hb_paused: AtomicBool::new(false),
            inbound_tx,
            notifier: OnceLock::new(),
        });

        // Accept loop: collect exactly num_nodes - 1 hello'd incoming
        // links, spawning one reader thread per link. Runs concurrently
        // with our own dialing below.
        let reader_handles: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = spawn_acceptor(
            self.listener,
            Arc::clone(&shared),
            Arc::clone(&reader_handles),
            self.decode_env,
            self.num_nodes,
            self.config.clone(),
        );

        // Dial every peer; each dialed connection is this node's exclusive
        // ordered write channel to that peer.
        let mut writer_txs: WriterTxs = Vec::with_capacity(self.num_nodes);
        let mut writer_handles = Vec::new();
        for (dst, &addr) in peer_addrs.iter().enumerate() {
            if dst == self.node.index() {
                writer_txs.push(None);
                continue;
            }
            let stream = dial(addr, self.config.connect_timeout)?;
            stream.set_nodelay(true)?;
            let hello = encode_hello(Hello {
                node: self.node,
                num_nodes: self.num_nodes as u16,
                incarnation: self.config.incarnation,
            });
            let (tx, rx) = unbounded::<Vec<u8>>();
            tx.send(hello).expect("writer receiver is live");
            shared
                .counters
                .control_frames_sent
                .fetch_add(1, Ordering::Relaxed);
            writer_handles.push(spawn_writer(
                stream,
                rx,
                Arc::clone(&shared),
                NodeId::from(dst),
            ));
            writer_txs.push(Some(tx));
        }

        let hb_handle = spawn_heartbeat(
            writer_txs.iter().flatten().cloned().collect(),
            Arc::clone(&shared),
            self.config.heartbeat_interval,
        );

        Ok(TcpEndpoint {
            num_nodes: self.num_nodes,
            params: self.params,
            stats: self.stats,
            encode_env: self.encode_env,
            inbound_rx,
            writers: Mutex::new(Some(writer_txs)),
            leave_sent: AtomicBool::new(false),
            shared,
            acceptor: Mutex::new(Some(acceptor)),
            hb_handle: Mutex::new(Some(hb_handle)),
            writer_handles: Mutex::new(writer_handles),
            reader_handles,
            finished: AtomicBool::new(false),
        })
    }
}

/// Factory for an all-in-one-process TCP cluster: every node's listener
/// and endpoint live in this process, connected over real `127.0.0.1`
/// sockets. Mirrors [`Fabric`](crate::fabric::Fabric)'s shape so the
/// runtime can swap it in behind the same seam.
pub struct TcpFabric<M: Send + 'static> {
    endpoints: Vec<TcpEndpoint<M>>,
}

impl<M: Send + 'static> TcpFabric<M> {
    /// Bind `num_nodes` listeners on ephemeral local ports and fully
    /// connect them.
    pub fn bind_local<C: WireCodec<M>>(
        num_nodes: usize,
        params: NetworkParams,
        stats: StatsCollector,
        config: TcpConfig,
    ) -> io::Result<Self> {
        let bindings: Vec<TcpNodeBinding<M>> = (0..num_nodes)
            .map(|i| {
                TcpNodeBinding::bind::<C>(
                    NodeId::from(i),
                    num_nodes,
                    params,
                    stats.clone(),
                    config.clone(),
                )
            })
            .collect::<io::Result<_>>()?;
        let addrs: Vec<SocketAddr> = bindings
            .iter()
            .map(TcpNodeBinding::local_addr)
            .collect::<io::Result<_>>()?;
        let endpoints = bindings
            .into_iter()
            .map(|b| b.connect(&addrs))
            .collect::<io::Result<_>>()?;
        Ok(TcpFabric { endpoints })
    }

    /// Number of nodes in the fabric.
    pub fn num_nodes(&self) -> usize {
        self.endpoints.len()
    }

    /// Take ownership of all endpoints (one per node, in node order).
    pub fn into_endpoints(self) -> Vec<TcpEndpoint<M>> {
        self.endpoints
    }
}

/// Per-destination encoded-frame senders, `None` at this node's own slot.
type WriterTxs = Vec<Option<Sender<Vec<u8>>>>;

/// One node's attachment to the TCP fabric. The sending surface mirrors
/// [`Endpoint`](crate::fabric::Endpoint) — same modeled-time stamping,
/// same statistics recording, same panics on misuse — so the runtime's
/// protocol layers cannot tell the fabrics apart.
pub struct TcpEndpoint<M: Send + 'static> {
    num_nodes: usize,
    params: NetworkParams,
    stats: StatsCollector,
    encode_env: fn(&Envelope<M>) -> Vec<u8>,
    inbound_rx: Receiver<Envelope<M>>,
    writers: Mutex<Option<WriterTxs>>,
    leave_sent: AtomicBool,
    shared: Arc<LinkShared<M>>,
    acceptor: Mutex<Option<JoinHandle<()>>>,
    hb_handle: Mutex<Option<JoinHandle<()>>>,
    writer_handles: Mutex<Vec<JoinHandle<()>>>,
    reader_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    finished: AtomicBool,
}

impl<M: Send + 'static> TcpEndpoint<M> {
    /// The node this endpoint belongs to.
    pub fn node(&self) -> NodeId {
        self.shared.node
    }

    /// Number of nodes reachable through this endpoint (including itself).
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The network parameters used for modeled-latency stamping.
    pub fn params(&self) -> &NetworkParams {
        &self.params
    }

    /// Send `payload` of `payload_bytes` bytes to `dst`, stamping modeled
    /// time exactly as the in-process fabric does and recording the same
    /// statistics. Frames to a given destination leave on one ordered
    /// connection, preserving per-link FIFO.
    ///
    /// # Panics
    /// Panics if `dst` is out of range or the link to `dst` has been shut
    /// down while the cluster is running (a protocol bug, as on the
    /// in-process fabric).
    pub fn send(
        &self,
        dst: NodeId,
        category: MsgCategory,
        payload_bytes: u64,
        sent_at: SimTime,
        payload: M,
    ) -> SimTime {
        let wire_bytes = payload_bytes + MESSAGE_HEADER_BYTES;
        let arrival = sent_at + self.params.hockney.latency(wire_bytes);
        self.stats.record(self.shared.node, category, wire_bytes);
        let counters = &self.shared.counters;
        counters.payload_frames_sent.fetch_add(1, Ordering::Relaxed);
        counters
            .modeled_bytes_sent
            .fetch_add(wire_bytes, Ordering::Relaxed);
        let envelope = Envelope {
            src: self.shared.node,
            dst,
            category,
            wire_bytes,
            sent_at,
            arrival,
            payload,
        };
        if dst == self.shared.node {
            // Loop-back delivery never touches a socket.
            counters
                .payload_frames_delivered
                .fetch_add(1, Ordering::Relaxed);
            counters
                .modeled_bytes_delivered
                .fetch_add(wire_bytes, Ordering::Relaxed);
            let delivered = self.shared.inbound_tx.send(envelope).is_ok();
            assert!(
                delivered,
                "destination endpoint dropped while cluster is running"
            );
            self.shared.wake_self();
            return arrival;
        }
        let frame = (self.encode_env)(&envelope);
        let writers = self.writers.lock();
        let delivered = writers
            .as_ref()
            .and_then(|w| {
                w.get(dst.index())
                    .unwrap_or_else(|| panic!("destination {dst} out of range"))
                    .as_ref()
            })
            .is_some_and(|tx| tx.send(frame).is_ok());
        assert!(
            delivered,
            "destination endpoint dropped while cluster is running"
        );
        arrival
    }

    /// Blocking receive of the next incoming message. Returns `None` after
    /// [`finish`](TcpEndpoint::finish) has closed the link.
    pub fn recv(&self) -> Option<Envelope<M>> {
        self.inbound_rx.recv()
    }

    /// Receive with a real-time timeout; used by protocol server loops so
    /// they can poll shutdown and leave state even when no messages arrive.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Envelope<M>, RecvTimeoutError> {
        self.inbound_rx.recv_timeout(timeout)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        self.inbound_rx.try_recv()
    }

    /// Number of messages currently queued for this node.
    pub fn pending(&self) -> usize {
        self.inbound_rx.len()
    }

    /// Deepest this node's inbound queue has ever been.
    pub fn queue_high_watermark(&self) -> usize {
        self.inbound_rx.max_len()
    }

    /// Install the wake hook fired by this endpoint's reader threads after
    /// each payload enqueue (and on leave frames). The first installation
    /// wins; wakes before installation are dropped, so installers must
    /// schedule this node once afterwards to cover the window.
    pub fn install_notifier(&self, notifier: Arc<dyn WakeNotifier>) {
        let _ = self.shared.notifier.set(notifier);
    }

    /// Announce an orderly departure: enqueue a leave frame as the final
    /// frame on every outgoing link (idempotent). Called by the runtime
    /// once this node's server has fully drained.
    pub fn announce_leave(&self) {
        if self.leave_sent.swap(true, Ordering::SeqCst) {
            return;
        }
        let writers = self.writers.lock();
        if let Some(writers) = writers.as_ref() {
            for tx in writers.iter().flatten() {
                if tx.send(encode_control(FrameKind::Leave)).is_ok() {
                    self.shared
                        .counters
                        .control_frames_sent
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Whether every peer's leave frame has been received — with per-link
    /// FIFO this means no peer will send anything further.
    pub fn all_peers_left(&self) -> bool {
        self.shared.leaves_received.load(Ordering::SeqCst) >= self.num_nodes - 1
    }

    /// This node's current liveness view of its peers.
    pub fn membership(&self) -> MembershipView {
        let now = self.shared.now_ms();
        self.shared.tracker.lock().view(now)
    }

    /// Snapshot of the socket-level traffic counters.
    pub fn wire_counters(&self) -> WireCounters {
        self.shared.counters.snapshot()
    }

    /// Test hook: suspend (or resume) this node's heartbeat emission so
    /// liveness transitions can be driven deterministically.
    pub fn pause_heartbeats(&self, paused: bool) {
        self.shared.hb_paused.store(paused, Ordering::SeqCst);
    }

    /// Tear the link down: stop the heartbeat thread, flush and close every
    /// outgoing connection, and join all socket threads. Idempotent. Safe
    /// to call only after the protocol has quiesced (leave handshake done);
    /// messages sent after `finish` panic as "destination dropped".
    pub fn finish(&self) {
        if self.finished.swap(true, Ordering::SeqCst) {
            return;
        }
        // 1. Stop heartbeats; the heartbeat thread owns writer-sender
        //    clones, so it must exit before dropping ours disconnects the
        //    writer channels.
        self.shared.hb_stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.hb_handle.lock().take() {
            let _ = h.join();
        }
        // 2. Close the write side: writers drain their queues (flushing
        //    any final leave frame) and close their sockets, which EOFs
        //    the peers' readers.
        *self.writers.lock() = None;
        for h in self.writer_handles.lock().drain(..) {
            let _ = h.join();
        }
        // 3. The acceptor exited once all peers dialed in (or its deadline
        //    passed).
        if let Some(h) = self.acceptor.lock().take() {
            let _ = h.join();
        }
        // 4. Stop readers: each exits at EOF or at its next read timeout.
        self.shared.reader_stop.store(true, Ordering::SeqCst);
        for h in self.reader_handles.lock().drain(..) {
            let _ = h.join();
        }
    }
}

impl<M: Send + 'static> Drop for TcpEndpoint<M> {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Monomorphic wrapper so `bind` can store a plain fn pointer.
fn decode_envelope_fn<M, C: WireCodec<M>>(body: &[u8]) -> Result<Envelope<M>, WireError> {
    crate::wire::decode_envelope::<M, C>(body)
}

/// Dial `addr`, retrying brief refusals until `timeout` (peers bind before
/// addresses are exchanged, but their accept loops may start later).
fn dial(addr: SocketAddr, timeout: Duration) -> io::Result<TcpStream> {
    let deadline = Instant::now() + timeout;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(e);
                }
                thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

/// Fill `buf` from `stream`, riding out read timeouts without losing
/// partial frames. Returns `Ok(false)` on a clean stop — EOF or a stop
/// request arriving **between** frames (`filled == 0`); EOF mid-frame is
/// an error.
fn read_full(stream: &mut TcpStream, buf: &mut [u8], stop: &AtomicBool) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(false)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "peer closed the connection mid-frame",
                    ))
                };
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::TimedOut || e.kind() == io::ErrorKind::WouldBlock =>
            {
                if stop.load(Ordering::SeqCst) && filled == 0 {
                    return Ok(false);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

fn spawn_acceptor<M: Send + 'static>(
    listener: TcpListener,
    shared: Arc<LinkShared<M>>,
    reader_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    decode_env: fn(&[u8]) -> Result<Envelope<M>, WireError>,
    num_nodes: usize,
    config: TcpConfig,
) -> JoinHandle<()> {
    thread::spawn(move || {
        let expected = num_nodes - 1;
        if expected == 0 {
            return;
        }
        if listener.set_nonblocking(true).is_err() {
            eprintln!("tcp fabric: node {}: accept loop cannot poll", shared.node);
            return;
        }
        let deadline = Instant::now() + config.connect_timeout;
        let mut accepted = 0;
        while accepted < expected {
            match listener.accept() {
                Ok((stream, _)) => match prepare_incoming(stream, &shared, &config, num_nodes) {
                    Ok((stream, peer)) => {
                        let handle = spawn_reader(stream, peer, Arc::clone(&shared), decode_env);
                        reader_handles.lock().push(handle);
                        accepted += 1;
                    }
                    Err(e) => {
                        eprintln!(
                            "tcp fabric: node {}: rejected incoming connection: {e}",
                            shared.node
                        );
                    }
                },
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline || shared.reader_stop.load(Ordering::SeqCst) {
                        eprintln!(
                            "tcp fabric: node {}: join incomplete ({accepted}/{expected} \
                             peers connected before the deadline)",
                            shared.node
                        );
                        return;
                    }
                    thread::sleep(Duration::from_millis(1));
                }
                Err(e) => {
                    eprintln!("tcp fabric: node {}: accept failed: {e}", shared.node);
                    return;
                }
            }
        }
    })
}

/// Read and validate the hello handshake on a freshly accepted connection.
fn prepare_incoming<M: Send + 'static>(
    stream: TcpStream,
    shared: &Arc<LinkShared<M>>,
    config: &TcpConfig,
    num_nodes: usize,
) -> io::Result<(TcpStream, NodeId)> {
    let mut stream = stream;
    stream.set_nonblocking(false)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(config.io_timeout))?;
    let frame = match read_one_frame(&mut stream, shared)? {
        Some(frame) => frame,
        None => {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before hello",
            ))
        }
    };
    let bad = |detail: String| io::Error::new(io::ErrorKind::InvalidData, detail);
    let (kind, body) = decode_frame(&frame).map_err(|e| bad(e.to_string()))?;
    if kind != FrameKind::Hello {
        return Err(bad(format!("expected hello, got {kind:?}")));
    }
    let hello = decode_hello(body).map_err(|e| bad(e.to_string()))?;
    if hello.num_nodes as usize != num_nodes {
        return Err(bad(format!(
            "peer speaks a {}-node cluster, this is a {num_nodes}-node cluster",
            hello.num_nodes
        )));
    }
    if hello.node.index() >= num_nodes || hello.node == shared.node {
        return Err(bad(format!("hello from invalid node {}", hello.node)));
    }
    // The hello is the rejoin point: a peer already latched dead must
    // present a strictly greater incarnation or the connection is refused
    // — a silently-resumed process never resurrects into the membership.
    if !shared
        .tracker
        .lock()
        .record_rejoin(hello.node, hello.incarnation, shared.now_ms())
    {
        return Err(bad(format!(
            "rejected hello from dead peer {} (stale incarnation {})",
            hello.node, hello.incarnation
        )));
    }
    Ok((stream, hello.node))
}

/// Read one length-prefixed frame (the bytes after the length prefix).
/// Returns `Ok(None)` on clean EOF / stop between frames.
fn read_one_frame<M: Send + 'static>(
    stream: &mut TcpStream,
    shared: &Arc<LinkShared<M>>,
) -> io::Result<Option<Vec<u8>>> {
    if shared.reader_stop.load(Ordering::SeqCst) {
        return Ok(None);
    }
    let mut len_buf = [0u8; 4];
    if !read_full(stream, &mut len_buf, &shared.reader_stop)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_BYTES || (len as usize) < FRAME_HEADER_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} out of bounds"),
        ));
    }
    let mut frame = vec![0u8; len as usize];
    if !read_full(stream, &mut frame, &shared.reader_stop)? {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed mid-frame",
        ));
    }
    shared
        .counters
        .socket_bytes_received
        .fetch_add(4 + u64::from(len), Ordering::Relaxed);
    Ok(Some(frame))
}

fn spawn_reader<M: Send + 'static>(
    mut stream: TcpStream,
    peer: NodeId,
    shared: Arc<LinkShared<M>>,
    decode_env: fn(&[u8]) -> Result<Envelope<M>, WireError>,
) -> JoinHandle<()> {
    thread::spawn(move || loop {
        let frame = match read_one_frame(&mut stream, &shared) {
            Ok(Some(frame)) => frame,
            Ok(None) => return,
            Err(e) => {
                // A malformed or broken link degrades: stop reading and
                // let the liveness tracker classify the peer. Never panic
                // on bytes from the network.
                eprintln!(
                    "tcp fabric: node {}: link from {peer} failed: {e}",
                    shared.node
                );
                return;
            }
        };
        let (kind, body) = match decode_frame(&frame) {
            Ok(parts) => parts,
            Err(e) => {
                eprintln!(
                    "tcp fabric: node {}: undecodable frame from {peer}: {e}",
                    shared.node
                );
                return;
            }
        };
        shared
            .tracker
            .lock()
            .record_frame(peer, kind == FrameKind::Heartbeat, shared.now_ms());
        match kind {
            FrameKind::Heartbeat => {}
            FrameKind::Leave => {
                shared.peer_left[peer.index()].store(true, Ordering::SeqCst);
                shared.leaves_received.fetch_add(1, Ordering::SeqCst);
                // A leave can complete the teardown condition of an already
                // drained node — wake it so an event-driven server re-checks
                // `all_peers_left` instead of waiting on a poll tick.
                shared.wake_self();
            }
            FrameKind::Hello => {
                // Duplicate hello after the handshake: ignore.
            }
            FrameKind::Payload => match decode_env(body) {
                Ok(envelope) => {
                    shared
                        .counters
                        .payload_frames_delivered
                        .fetch_add(1, Ordering::Relaxed);
                    shared
                        .counters
                        .modeled_bytes_delivered
                        .fetch_add(envelope.wire_bytes, Ordering::Relaxed);
                    if shared.inbound_tx.send(envelope).is_err() {
                        return;
                    }
                    // Enqueue-before-wake, as on the in-process fabric.
                    shared.wake_self();
                }
                Err(e) => {
                    eprintln!(
                        "tcp fabric: node {}: undecodable payload from {peer}: {e}",
                        shared.node
                    );
                    return;
                }
            },
        }
    })
}

fn spawn_writer<M: Send + 'static>(
    mut stream: TcpStream,
    rx: Receiver<Vec<u8>>,
    shared: Arc<LinkShared<M>>,
    peer: NodeId,
) -> JoinHandle<()> {
    thread::spawn(move || {
        // recv() returns None only once every sender clone is dropped AND
        // the queue is drained, so all enqueued frames (including the
        // final leave) hit the socket before it closes.
        while let Some(frame) = rx.recv() {
            if let Err(e) = stream.write_all(&frame) {
                // A peer that announced its leave closes its sockets as
                // soon as its own teardown runs; failing to push further
                // heartbeats at it is expected, not link degradation.
                if !shared.peer_left[peer.index()].load(Ordering::SeqCst) {
                    eprintln!(
                        "tcp fabric: node {}: write to {peer} failed: {e}",
                        shared.node
                    );
                }
                return;
            }
            shared
                .counters
                .socket_bytes_sent
                .fetch_add(frame.len() as u64, Ordering::Relaxed);
        }
        let _ = stream.flush();
    })
}

fn spawn_heartbeat<M: Send + 'static>(
    writer_txs: Vec<Sender<Vec<u8>>>,
    shared: Arc<LinkShared<M>>,
    interval: Duration,
) -> JoinHandle<()> {
    thread::spawn(move || {
        let slice = Duration::from_millis(1);
        let mut since_beat = interval; // beat immediately on start
        while !shared.hb_stop.load(Ordering::SeqCst) {
            if since_beat >= interval {
                since_beat = Duration::ZERO;
                if !shared.hb_paused.load(Ordering::SeqCst) {
                    for tx in &writer_txs {
                        if tx.send(encode_control(FrameKind::Heartbeat)).is_ok() {
                            shared
                                .counters
                                .heartbeats_sent
                                .fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
            thread::sleep(slice);
            since_beat += slice;
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::PeerLiveness;
    use crate::wire::{WireReader, WireWriter};

    /// Minimal codec for tests: a u64 payload.
    struct U64Codec;
    impl WireCodec<u64> for U64Codec {
        fn encode(msg: &u64, w: &mut WireWriter) {
            w.u64(*msg);
        }
        fn decode(r: &mut WireReader<'_>) -> Result<u64, WireError> {
            r.u64()
        }
    }

    fn local_fabric(
        num_nodes: usize,
        config: TcpConfig,
    ) -> (Vec<TcpEndpoint<u64>>, StatsCollector) {
        let stats = StatsCollector::new();
        let fabric = TcpFabric::bind_local::<U64Codec>(
            num_nodes,
            NetworkParams::fast_ethernet(),
            stats.clone(),
            config,
        )
        .expect("bind 127.0.0.1 fabric");
        (fabric.into_endpoints(), stats)
    }

    fn teardown(endpoints: &[TcpEndpoint<u64>]) {
        for ep in endpoints {
            ep.announce_leave();
        }
        for ep in endpoints {
            while !ep.all_peers_left() {
                thread::sleep(Duration::from_millis(1));
            }
        }
        for ep in endpoints {
            ep.finish();
        }
    }

    /// Poll until `cond` holds or a generous deadline passes.
    fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while !cond() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn send_and_receive_over_real_sockets() {
        let (eps, stats) = local_fabric(2, TcpConfig::default());
        let arrival = eps[0].send(
            NodeId(1),
            MsgCategory::ObjRequest,
            8,
            SimTime::from_micros(5.0),
            42,
        );
        let env = eps[1]
            .recv_timeout(Duration::from_secs(5))
            .expect("delivery");
        assert_eq!(env.src, NodeId(0));
        assert_eq!(env.dst, NodeId(1));
        assert_eq!(env.payload, 42);
        assert_eq!(env.arrival, arrival);
        assert_eq!(env.wire_bytes, 8 + MESSAGE_HEADER_BYTES);
        assert!(env.arrival > env.sent_at);
        // Modeled stats match the in-process fabric's accounting exactly.
        let snap = stats.snapshot();
        assert_eq!(snap.total_messages(), 1);
        assert_eq!(snap.total_bytes(), 8 + MESSAGE_HEADER_BYTES);
        teardown(&eps);
        // Wire counters reconcile with the modeled stats.
        let sent: u64 = eps
            .iter()
            .map(|e| e.wire_counters().payload_frames_sent)
            .sum();
        let delivered: u64 = eps
            .iter()
            .map(|e| e.wire_counters().payload_frames_delivered)
            .sum();
        let modeled: u64 = eps
            .iter()
            .map(|e| e.wire_counters().modeled_bytes_sent)
            .sum();
        assert_eq!(sent, 1);
        assert_eq!(delivered, 1);
        assert_eq!(modeled, snap.total_bytes());
        assert!(eps[0].wire_counters().socket_bytes_sent > 0);
        assert!(eps[1].wire_counters().socket_bytes_received > 0);
    }

    #[test]
    fn per_link_fifo_is_preserved() {
        let (eps, _stats) = local_fabric(3, TcpConfig::default());
        for i in 0..200u64 {
            eps[0].send(NodeId(2), MsgCategory::Control, 8, SimTime::ZERO, i);
            eps[1].send(NodeId(2), MsgCategory::Control, 8, SimTime::ZERO, 1_000 + i);
        }
        let mut from0 = Vec::new();
        let mut from1 = Vec::new();
        while from0.len() + from1.len() < 400 {
            let env = eps[2]
                .recv_timeout(Duration::from_secs(5))
                .expect("delivery");
            if env.src == NodeId(0) {
                from0.push(env.payload);
            } else {
                from1.push(env.payload);
            }
        }
        assert_eq!(from0, (0..200).collect::<Vec<u64>>());
        assert_eq!(from1, (1_000..1_200).collect::<Vec<u64>>());
        teardown(&eps);
    }

    #[test]
    fn self_send_is_allowed() {
        let (eps, _stats) = local_fabric(1, TcpConfig::default());
        eps[0].send(NodeId(0), MsgCategory::Control, 0, SimTime::ZERO, 9);
        assert_eq!(
            eps[0].recv_timeout(Duration::from_secs(1)).unwrap().payload,
            9
        );
        assert!(
            eps[0].all_peers_left(),
            "a 1-node cluster has no peers to wait for"
        );
        teardown(&eps);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sending_to_unknown_node_panics() {
        let (eps, _stats) = local_fabric(2, TcpConfig::default());
        eps[0].send(NodeId(5), MsgCategory::Control, 0, SimTime::ZERO, 0);
    }

    #[test]
    fn pause_degrades_suspect_then_dead_and_death_is_sticky() {
        let (eps, _stats) = local_fabric(2, TcpConfig::fast_liveness());
        // Heartbeats flow: both sides see each other alive.
        wait_for(
            || eps[0].membership().all_alive() && eps[1].membership().all_alive(),
            "initial all-alive view",
        );
        // Node 0 goes silent: node 1's view degrades to suspect, then dead.
        eps[0].pause_heartbeats(true);
        wait_for(
            || eps[1].membership().liveness(NodeId(0)) == Some(PeerLiveness::Suspect),
            "suspect transition",
        );
        wait_for(
            || eps[1].membership().liveness(NodeId(0)) == Some(PeerLiveness::Dead),
            "dead transition",
        );
        // Node 1 kept beating the whole time, so node 0 still sees it alive.
        assert_eq!(
            eps[0].membership().liveness(NodeId(1)),
            Some(PeerLiveness::Alive)
        );
        // Resumed heartbeats on the old connection do NOT resurrect the
        // peer: the first frame after the silence latches it dead, and it
        // stays dead without an incarnation-fenced rejoin.
        eps[0].pause_heartbeats(false);
        wait_for(
            || {
                let view = eps[1].membership();
                let peer = view.peers.iter().find(|p| p.node == NodeId(0)).unwrap();
                peer.silent_ms < 5 && peer.heartbeats > 0
            },
            "resumed heartbeats observed",
        );
        thread::sleep(Duration::from_millis(20));
        let view = eps[1].membership();
        let peer = view.peers.iter().find(|p| p.node == NodeId(0)).unwrap();
        assert_eq!(
            peer.liveness,
            PeerLiveness::Dead,
            "a silently-resumed peer must stay latched dead"
        );
        assert_eq!(peer.recoveries, 0);
        teardown(&eps);
    }

    #[test]
    fn suspect_recovery_still_works_under_sticky_death() {
        let (eps, _stats) = local_fabric(2, TcpConfig::fast_liveness());
        wait_for(
            || eps[0].membership().all_alive() && eps[1].membership().all_alive(),
            "initial all-alive view",
        );
        // Pause just long enough to go suspect, then resume well before
        // the dead threshold: the peer recovers and counts a recovery.
        eps[0].pause_heartbeats(true);
        wait_for(
            || eps[1].membership().liveness(NodeId(0)) == Some(PeerLiveness::Suspect),
            "suspect transition",
        );
        eps[0].pause_heartbeats(false);
        wait_for(
            || eps[1].membership().liveness(NodeId(0)) == Some(PeerLiveness::Alive),
            "recovery from suspect",
        );
        let view = eps[1].membership();
        let peer = view.peers.iter().find(|p| p.node == NodeId(0)).unwrap();
        assert!(peer.recoveries >= 1);
        assert!(peer.heartbeats > 0);
        teardown(&eps);
    }

    #[test]
    fn payload_traffic_counts_as_liveness_signal() {
        let (eps, _stats) = local_fabric(2, TcpConfig::fast_liveness());
        eps[0].pause_heartbeats(true);
        // Keep sending payloads; the peer must stay alive on payload
        // traffic alone for well past the dead threshold.
        let deadline = Instant::now() + Duration::from_millis(400);
        while Instant::now() < deadline {
            eps[0].send(NodeId(1), MsgCategory::Control, 0, SimTime::ZERO, 7);
            assert!(eps[1].recv_timeout(Duration::from_secs(1)).is_ok());
            thread::sleep(Duration::from_millis(5));
            assert_eq!(
                eps[1].membership().liveness(NodeId(0)),
                Some(PeerLiveness::Alive)
            );
        }
        eps[0].pause_heartbeats(false);
        teardown(&eps);
    }
}
