//! # dsm-net — the simulated cluster interconnect
//!
//! The paper's testbed is a 16-node PC cluster on a Fast-Ethernet switch.
//! This crate replaces the physical interconnect with an in-process message
//! fabric:
//!
//! * [`MsgCategory`] — every protocol message is tagged with the category the
//!   paper's evaluation breaks messages into (`obj`, `mig`, `diff`, `redir`,
//!   synchronization, ...).
//! * [`NetworkStats`] / [`StatsCollector`] — message counts and byte volumes
//!   per category and per node; these are the "number of messages" and
//!   "network traffic" series of Figures 3 and 5(b).
//! * [`Envelope`] — a message in flight, carrying virtual-time send and
//!   arrival stamps computed with the Hockney model from `dsm-model`.
//! * [`Fabric`] / [`Endpoint`] — a channel-based full mesh between
//!   node threads. Sending is non-blocking; each node's protocol server
//!   drains its endpoint. The fabric also offers a deterministic single-
//!   threaded [`Loopback`] used by protocol unit tests.
//!
//! The fabric is deliberately dumb: it moves payloads, stamps virtual times
//! and counts bytes. All protocol semantics live in `dsm-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod category;
pub mod envelope;
pub mod fabric;
pub mod loopback;
pub mod stats;

pub use category::MsgCategory;
pub use envelope::{Envelope, MESSAGE_HEADER_BYTES};
pub use fabric::{Endpoint, Fabric};
pub use loopback::Loopback;
pub use stats::{CategoryStats, NetworkStats, StatsCollector};
