//! # dsm-net — the simulated cluster interconnect
//!
//! The paper's testbed is a 16-node PC cluster on a Fast-Ethernet switch.
//! This crate replaces the physical interconnect with an in-process message
//! fabric:
//!
//! * [`MsgCategory`] — every protocol message is tagged with the category the
//!   paper's evaluation breaks messages into (`obj`, `mig`, `diff`, `redir`,
//!   synchronization, ...).
//! * [`NetworkStats`] / [`StatsCollector`] — message counts and byte volumes
//!   per category and per node; these are the "number of messages" and
//!   "network traffic" series of Figures 3 and 5(b).
//! * [`Envelope`] — a message in flight, carrying virtual-time send and
//!   arrival stamps computed with the Hockney model from `dsm-model`.
//! * [`Fabric`] / [`Endpoint`] — a channel-based full mesh between
//!   node threads. Sending is non-blocking; each node's protocol server
//!   drains its endpoint. The fabric also offers a deterministic single-
//!   threaded [`Loopback`] used by protocol unit tests.
//! * [`SimFabric`] / [`SimEndpoint`] — the deterministic simulation fabric:
//!   a seeded virtual-time scheduler that owns delivery itself, applies
//!   pluggable [`LinkPerturbation`]s (latency jitter, bounded reordering,
//!   bursty delay spikes) and records a replayable [`DeliveryTrace`]. The
//!   runtime's sim mode drives it with event-driven wakeups — no polling.
//!
//! The fabrics are deliberately dumb: they move payloads, stamp virtual
//! times and count bytes. All protocol semantics live in `dsm-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod category;
pub mod envelope;
pub mod fabric;
pub mod loopback;
pub mod sim;
pub mod stats;

pub use category::MsgCategory;
pub use envelope::{Envelope, MESSAGE_HEADER_BYTES};
pub use fabric::{Endpoint, Fabric};
pub use loopback::Loopback;
pub use sim::{
    BoundedReorder, DelayBursts, DeliveryRecord, DeliveryTrace, LatencyJitter, LinkPerturbation,
    SimConfig, SimEndpoint, SimFabric, SimStep,
};
pub use stats::{CategoryStats, NetworkStats, StatsCollector};
