//! # dsm-net — the simulated cluster interconnect
//!
//! The paper's testbed is a 16-node PC cluster on a Fast-Ethernet switch.
//! This crate replaces the physical interconnect with an in-process message
//! fabric:
//!
//! * [`MsgCategory`] — every protocol message is tagged with the category the
//!   paper's evaluation breaks messages into (`obj`, `mig`, `diff`, `redir`,
//!   synchronization, ...).
//! * [`NetworkStats`] / [`StatsCollector`] — message counts and byte volumes
//!   per category and per node; these are the "number of messages" and
//!   "network traffic" series of Figures 3 and 5(b).
//! * [`Envelope`] — a message in flight, carrying virtual-time send and
//!   arrival stamps computed with the Hockney model from `dsm-model`.
//! * [`Fabric`] / [`Endpoint`] — a channel-based full mesh between
//!   node threads. Sending is non-blocking; each node's protocol server
//!   drains its endpoint. Endpoints carry a [`WakeHub`] so an event-driven
//!   server (the runtime's executor) can be notified of each enqueue via a
//!   [`WakeNotifier`] instead of polling. The fabric also offers a
//!   deterministic single-threaded [`Loopback`] used by protocol unit
//!   tests.
//! * [`SimFabric`] / [`SimEndpoint`] — the deterministic simulation fabric:
//!   a seeded virtual-time scheduler that owns delivery itself, applies
//!   pluggable [`LinkPerturbation`]s (latency jitter, bounded reordering,
//!   bursty delay spikes), optionally injects seeded *loss* (random drops,
//!   a [`PartitionSpec`] partition/heal cycle, a [`PauseSpec`] node crash
//!   window) and records a replayable [`DeliveryTrace`]. The runtime's sim
//!   mode drives it with event-driven wakeups — no polling.
//!
//! * [`TcpFabric`] / [`TcpEndpoint`] — a real multi-process transport over
//!   `std::net` TCP sockets on `127.0.0.1`, with join-time membership
//!   exchange, heartbeat liveness ([`membership`]) and the wire format
//!   below. Same sending surface, same modeled-time stamping.
//!
//! The fabrics are deliberately dumb: they move payloads, stamp virtual
//! times and count bytes. All protocol semantics live in `dsm-core`.
//!
//! # Wire format
//!
//! The TCP fabric speaks a hand-rolled, dependency-free binary format
//! defined in [`wire`]. Every frame is length-prefixed with an explicit
//! little-endian layout and a magic/version header:
//!
//! ```text
//! [ body_len u32 ][ magic u32 "DSMW" ][ version u16 ][ kind u8 ][ body ]
//! ```
//!
//! Frame kinds: `Hello` (join handshake: node id + cluster size),
//! `Payload` (one [`Envelope`]: src, dst, category code, modeled
//! `wire_bytes`, `sent_at`/`arrival` as u64 nanoseconds, then the protocol
//! message encoded by a [`wire::WireCodec`]), `Heartbeat` and `Leave`
//! (bodyless fabric-internal control frames). The modeled fields travel on
//! the wire so virtual-clock merging is bit-identical to the in-process
//! fabrics. This crate defines the *framing* and the codec trait; the
//! concrete codec for the protocol's message enum lives in `dsm-wire`,
//! which sits above both this crate and `dsm-core`. Decoding is total:
//! malformed frames produce typed [`wire::WireError`]s, never panics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod category;
pub mod envelope;
pub mod fabric;
pub mod loopback;
pub mod membership;
pub mod sim;
pub mod stats;
pub mod tcp;
pub mod wire;

pub use category::MsgCategory;
pub use envelope::{Envelope, MESSAGE_HEADER_BYTES};
pub use fabric::{Endpoint, Fabric, WakeHub, WakeNotifier};
pub use loopback::Loopback;
pub use membership::{LivenessTracker, MembershipReport, MembershipView, PeerLiveness, PeerStatus};
pub use sim::{
    BoundedReorder, DelayBursts, DeliveryRecord, DeliveryTrace, DropReason, DropRecord,
    LatencyJitter, LinkPerturbation, PartitionSpec, PauseSpec, SimConfig, SimEndpoint, SimFabric,
    SimFrontier, SimStep,
};
pub use stats::{CategoryStats, NetworkStats, StatsCollector};
pub use tcp::{TcpConfig, TcpEndpoint, TcpFabric, TcpNodeBinding, WireCounters};
pub use wire::{WireCodec, WireError};
