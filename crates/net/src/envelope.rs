//! Messages in flight.

use crate::category::MsgCategory;
use dsm_model::SimTime;
use dsm_objspace::NodeId;

/// Fixed modelled header size (bytes) added to every message: source,
/// destination, category, request id and protocol bookkeeping. Real DSM
/// implementations on TCP pay at least this much per message.
pub const MESSAGE_HEADER_BYTES: u64 = 32;

/// A message travelling between two nodes of the simulated cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope<M> {
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Statistics/breakdown category.
    pub category: MsgCategory,
    /// Wire size in bytes (payload + header), used for traffic accounting
    /// and the Hockney latency that produced `arrival`.
    pub wire_bytes: u64,
    /// Virtual time at which the sender issued the message.
    pub sent_at: SimTime,
    /// Virtual time at which the message reaches the destination
    /// (`sent_at + t(wire_bytes)` under the Hockney model).
    pub arrival: SimTime,
    /// The protocol payload.
    pub payload: M,
}

impl<M> Envelope<M> {
    /// One-way virtual latency experienced by this message.
    pub fn latency(&self) -> dsm_model::SimDuration {
        self.arrival - self.sent_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_model::SimDuration;

    #[test]
    fn latency_is_arrival_minus_send() {
        let env = Envelope {
            src: NodeId(0),
            dst: NodeId(1),
            category: MsgCategory::Control,
            wire_bytes: 64,
            sent_at: SimTime::from_micros(10.0),
            arrival: SimTime::from_micros(25.0),
            payload: (),
        };
        assert_eq!(env.latency(), SimDuration::from_micros(15.0));
    }
}
