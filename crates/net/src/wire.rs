//! Wire framing: the dependency-free binary layer under the TCP fabric.
//!
//! Everything that crosses a real socket is a **length-prefixed frame**
//! with an explicit little-endian layout:
//!
//! ```text
//! [ body_len: u32 LE ]           -- length of everything after this field
//! [ magic:    u32 LE ]           -- WIRE_MAGIC ("DSMW")
//! [ version:  u16 LE ]           -- WIRE_VERSION
//! [ kind:     u8     ]           -- FrameKind
//! [ body:     kind-specific ... ]
//! ```
//!
//! Payload frames carry a full [`Envelope`]: the routing header (`src`,
//! `dst`, category code) plus the **modeled** fields (`wire_bytes`,
//! `sent_at`, `arrival` as u64 nanoseconds) so the receiver's virtual-clock
//! merge is bit-identical to the in-process fabrics, followed by the
//! protocol message encoded by a [`WireCodec`]. The codec for the concrete
//! `ProtocolMsg` lives in the `dsm-wire` crate (this crate sits *below* the
//! protocol definition in the dependency order).
//!
//! Decoding is **total**: malformed input of any shape — bad magic, an
//! unsupported version, truncated bodies, unknown tags, out-of-range
//! lengths — returns a typed [`WireError`], never panics and never
//! allocates more than the input could justify.

use crate::category::MsgCategory;
use crate::envelope::Envelope;
use dsm_model::SimTime;
use dsm_objspace::NodeId;
use std::fmt;

/// Magic number leading every frame: `"DSMW"` read as little-endian u32.
pub const WIRE_MAGIC: u32 = u32::from_le_bytes(*b"DSMW");

/// Wire-format version negotiated (trivially, by equality) at join time.
pub const WIRE_VERSION: u16 = 1;

/// Upper bound on a frame body; larger length prefixes are rejected before
/// any allocation so a corrupt or hostile peer cannot trigger a huge
/// allocation from four bytes.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// Size of the fixed per-frame header after the length prefix
/// (magic + version + kind).
pub const FRAME_HEADER_BYTES: usize = 4 + 2 + 1;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Join handshake: sent once, immediately after connecting, on every
    /// per-link connection (`node`, `num_nodes`).
    Hello,
    /// One protocol envelope.
    Payload,
    /// Membership heartbeat (fabric-internal; not a protocol message and
    /// not recorded in the network statistics).
    Heartbeat,
    /// Orderly departure: the sender's server loop has drained and will
    /// send nothing further on this link.
    Leave,
}

impl FrameKind {
    /// The on-wire code of this kind.
    pub fn code(self) -> u8 {
        match self {
            FrameKind::Hello => 0,
            FrameKind::Payload => 1,
            FrameKind::Heartbeat => 2,
            FrameKind::Leave => 3,
        }
    }

    /// Decode an on-wire kind code.
    pub fn from_code(code: u8) -> Option<FrameKind> {
        match code {
            0 => Some(FrameKind::Hello),
            1 => Some(FrameKind::Payload),
            2 => Some(FrameKind::Heartbeat),
            3 => Some(FrameKind::Leave),
            _ => None,
        }
    }
}

/// A typed wire-decoding failure. Conversion into the application-facing
/// taxonomy (`DsmError::Transport`) lives next to the concrete protocol
/// codec in `dsm-wire`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before a fixed-size field or declared length.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that remained.
        remaining: usize,
    },
    /// The frame does not start with [`WIRE_MAGIC`].
    BadMagic {
        /// The four bytes found instead.
        found: u32,
    },
    /// The frame's version field is not [`WIRE_VERSION`].
    UnsupportedVersion {
        /// The version found.
        found: u16,
    },
    /// The frame kind code is not a known [`FrameKind`].
    UnknownFrameKind {
        /// The code found.
        code: u8,
    },
    /// A declared length exceeds [`MAX_FRAME_BYTES`] or the remaining input.
    Oversized {
        /// The declared length.
        len: u64,
    },
    /// An enum tag, boolean or option flag had no defined meaning.
    UnknownTag {
        /// What was being decoded.
        context: &'static str,
        /// The offending code.
        code: u8,
    },
    /// Fields decoded but violate a semantic invariant (e.g. diff runs out
    /// of bounds).
    Invalid {
        /// What was being decoded.
        context: &'static str,
    },
    /// The body decoded completely but bytes were left over.
    TrailingBytes {
        /// Number of undecoded bytes.
        count: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "truncated frame: needed {needed} bytes, {remaining} remain"
                )
            }
            WireError::BadMagic { found } => {
                write!(
                    f,
                    "bad frame magic {found:#010x} (expected {WIRE_MAGIC:#010x})"
                )
            }
            WireError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported wire version {found} (speaking {WIRE_VERSION})"
                )
            }
            WireError::UnknownFrameKind { code } => write!(f, "unknown frame kind {code}"),
            WireError::Oversized { len } => {
                write!(f, "declared length {len} exceeds limit or remaining input")
            }
            WireError::UnknownTag { context, code } => {
                write!(f, "unknown {context} tag {code}")
            }
            WireError::Invalid { context } => write!(f, "invalid {context}"),
            WireError::TrailingBytes { count } => {
                write!(f, "{count} trailing byte(s) after a complete body")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Little-endian byte-sink for encoding.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> Self {
        WireWriter::default()
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern (little-endian u64), so
    /// round-trips are bit-exact including NaN payloads and signed zeros.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Append raw bytes (no length prefix — callers write their own).
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Append a u32 length prefix followed by the bytes.
    ///
    /// # Panics
    /// Panics if `v` is longer than `u32::MAX` bytes (nothing the protocol
    /// produces comes close; the object space caps objects at 4 GiB).
    pub fn len_bytes(&mut self, v: &[u8]) {
        self.u32(u32::try_from(v.len()).expect("wire blob longer than u32::MAX"));
        self.bytes(v);
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The encoded bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian cursor for decoding; every accessor is bounds-checked and
/// returns [`WireError::Truncated`] instead of slicing out of range.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian u16.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Read a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Read a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Read an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a bool byte; anything but 0/1 is a typed error (a corrupt bool
    /// must not silently collapse to `true`).
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            code => Err(WireError::UnknownTag {
                context: "bool",
                code,
            }),
        }
    }

    /// Read `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Read a u32 length prefix, validate it against the remaining input,
    /// and return that many bytes. The validation happens *before* any
    /// allocation, so a corrupt length cannot demand gigabytes.
    pub fn len_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(WireError::Oversized { len: len as u64 });
        }
        self.take(len)
    }

    /// Read a u32 element count for a collection whose elements occupy at
    /// least `min_element_bytes` each, rejecting counts the remaining input
    /// cannot possibly hold (the pre-allocation guard for `Vec` decoding).
    pub fn count(&mut self, min_element_bytes: usize) -> Result<usize, WireError> {
        let count = self.u32()? as usize;
        if count.saturating_mul(min_element_bytes.max(1)) > self.remaining() {
            return Err(WireError::Oversized { len: count as u64 });
        }
        Ok(count)
    }

    /// Assert the body was consumed exactly.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                count: self.remaining(),
            })
        }
    }
}

/// A binary codec for one protocol-message type. The framing layer is
/// generic over the payload; the concrete `ProtocolMsg` implementation
/// lives in `dsm-wire` (which depends on both this crate and `dsm-core`).
pub trait WireCodec<M> {
    /// Append the encoding of `msg`.
    fn encode(msg: &M, w: &mut WireWriter);
    /// Decode one message; must consume exactly the bytes `encode` wrote.
    fn decode(r: &mut WireReader<'_>) -> Result<M, WireError>;
}

/// Frame `body` under `kind`: length prefix, magic, version, kind, body.
pub fn encode_frame(kind: FrameKind, body: &[u8]) -> Vec<u8> {
    let body_len = FRAME_HEADER_BYTES + body.len();
    assert!(
        body_len <= MAX_FRAME_BYTES as usize,
        "frame body of {body_len} bytes exceeds MAX_FRAME_BYTES"
    );
    let mut w = WireWriter::new();
    w.u32(body_len as u32);
    w.u32(WIRE_MAGIC);
    w.u16(WIRE_VERSION);
    w.u8(kind.code());
    w.bytes(body);
    w.into_vec()
}

/// Decode a frame given everything *after* the length prefix; returns the
/// kind and the kind-specific body.
pub fn decode_frame(frame: &[u8]) -> Result<(FrameKind, &[u8]), WireError> {
    let mut r = WireReader::new(frame);
    let magic = r.u32()?;
    if magic != WIRE_MAGIC {
        return Err(WireError::BadMagic { found: magic });
    }
    let version = r.u16()?;
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion { found: version });
    }
    let code = r.u8()?;
    let kind = FrameKind::from_code(code).ok_or(WireError::UnknownFrameKind { code })?;
    let body = &frame[FRAME_HEADER_BYTES..];
    Ok((kind, body))
}

/// Encode a full payload frame for `env` (length prefix included).
pub fn encode_envelope<M, C: WireCodec<M>>(env: &Envelope<M>) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u16(env.src.0);
    w.u16(env.dst.0);
    w.u8(category_code(env.category));
    w.u64(env.wire_bytes);
    w.u64(env.sent_at.as_nanos());
    w.u64(env.arrival.as_nanos());
    C::encode(&env.payload, &mut w);
    encode_frame(FrameKind::Payload, &w.into_vec())
}

/// Decode a payload-frame body back into an envelope, checking that the
/// body is consumed exactly.
pub fn decode_envelope<M, C: WireCodec<M>>(body: &[u8]) -> Result<Envelope<M>, WireError> {
    let mut r = WireReader::new(body);
    let src = NodeId(r.u16()?);
    let dst = NodeId(r.u16()?);
    let category = category_from_code(r.u8()?)?;
    let wire_bytes = r.u64()?;
    let sent_at = SimTime::from_nanos(r.u64()?);
    let arrival = SimTime::from_nanos(r.u64()?);
    let payload = C::decode(&mut r)?;
    r.finish()?;
    Ok(Envelope {
        src,
        dst,
        category,
        wire_bytes,
        sent_at,
        arrival,
        payload,
    })
}

/// The join-handshake body sent on every per-link connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// The connecting (sending) node.
    pub node: NodeId,
    /// The cluster size the sender was configured with; both sides must
    /// agree or the join is refused.
    pub num_nodes: u16,
    /// The sender's incarnation number. A restarted process presents a
    /// strictly greater incarnation than its previous life; the liveness
    /// tracker uses it to fence rejoins of peers already declared dead.
    pub incarnation: u32,
}

/// Encode a full hello frame (length prefix included).
pub fn encode_hello(hello: Hello) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u16(hello.node.0);
    w.u16(hello.num_nodes);
    w.u32(hello.incarnation);
    encode_frame(FrameKind::Hello, &w.into_vec())
}

/// Decode a hello-frame body.
pub fn decode_hello(body: &[u8]) -> Result<Hello, WireError> {
    let mut r = WireReader::new(body);
    let node = NodeId(r.u16()?);
    let num_nodes = r.u16()?;
    let incarnation = r.u32()?;
    r.finish()?;
    Ok(Hello {
        node,
        num_nodes,
        incarnation,
    })
}

/// Encode a bodyless control frame (heartbeat, leave).
pub fn encode_control(kind: FrameKind) -> Vec<u8> {
    encode_frame(kind, &[])
}

/// The stable on-wire code of a category (its index in
/// [`MsgCategory::ALL`]).
pub fn category_code(category: MsgCategory) -> u8 {
    MsgCategory::ALL
        .iter()
        .position(|c| *c == category)
        .expect("every category is in ALL") as u8
}

/// Decode a category code.
pub fn category_from_code(code: u8) -> Result<MsgCategory, WireError> {
    MsgCategory::ALL
        .get(code as usize)
        .copied()
        .ok_or(WireError::UnknownTag {
            context: "message category",
            code,
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_round_trip_scalars() {
        let mut w = WireWriter::new();
        w.u8(7);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.f64(-0.0);
        w.bool(true);
        w.len_bytes(b"abc");
        let bytes = w.into_vec();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.bool().unwrap());
        assert_eq!(r.len_bytes().unwrap(), b"abc");
        r.finish().unwrap();
    }

    #[test]
    fn reader_reports_truncation_not_panic() {
        let mut r = WireReader::new(&[1, 2]);
        assert!(matches!(
            r.u64(),
            Err(WireError::Truncated {
                needed: 8,
                remaining: 2
            })
        ));
        // The failed read consumed nothing.
        assert_eq!(r.u16().unwrap(), 0x0201);
    }

    #[test]
    fn corrupt_bool_and_oversized_length_are_typed_errors() {
        let mut r = WireReader::new(&[9]);
        assert!(matches!(
            r.bool(),
            Err(WireError::UnknownTag {
                context: "bool",
                ..
            })
        ));
        // Length prefix claims 1000 bytes with 1 remaining: rejected before
        // any allocation.
        let mut w = WireWriter::new();
        w.u32(1000);
        w.u8(0);
        let bytes = w.into_vec();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            r.len_bytes(),
            Err(WireError::Oversized { len: 1000 })
        ));
    }

    #[test]
    fn frame_header_is_checked() {
        let frame = encode_frame(FrameKind::Heartbeat, &[]);
        // Strip the length prefix as the socket reader does.
        let after_len = &frame[4..];
        let (kind, body) = decode_frame(after_len).unwrap();
        assert_eq!(kind, FrameKind::Heartbeat);
        assert!(body.is_empty());

        let mut corrupt = after_len.to_vec();
        corrupt[0] ^= 0xFF;
        assert!(matches!(
            decode_frame(&corrupt),
            Err(WireError::BadMagic { .. })
        ));

        let mut wrong_version = after_len.to_vec();
        wrong_version[4] = 0xFE;
        assert!(matches!(
            decode_frame(&wrong_version),
            Err(WireError::UnsupportedVersion { .. })
        ));

        let mut wrong_kind = after_len.to_vec();
        wrong_kind[6] = 99;
        assert!(matches!(
            decode_frame(&wrong_kind),
            Err(WireError::UnknownFrameKind { code: 99 })
        ));
    }

    #[test]
    fn hello_round_trips() {
        let hello = Hello {
            node: NodeId(3),
            num_nodes: 8,
            incarnation: 5,
        };
        let frame = encode_hello(hello);
        let (kind, body) = decode_frame(&frame[4..]).unwrap();
        assert_eq!(kind, FrameKind::Hello);
        assert_eq!(decode_hello(body).unwrap(), hello);
    }

    #[test]
    fn category_codes_are_stable_and_total() {
        for (i, category) in MsgCategory::ALL.iter().enumerate() {
            assert_eq!(category_code(*category), i as u8);
            assert_eq!(category_from_code(i as u8).unwrap(), *category);
        }
        assert!(category_from_code(MsgCategory::ALL.len() as u8).is_err());
    }

    /// A toy codec so envelope framing can be tested without `dsm-core`.
    struct U64Codec;
    impl WireCodec<u64> for U64Codec {
        fn encode(msg: &u64, w: &mut WireWriter) {
            w.u64(*msg);
        }
        fn decode(r: &mut WireReader<'_>) -> Result<u64, WireError> {
            r.u64()
        }
    }

    #[test]
    fn envelope_round_trips_with_modeled_times() {
        let env = Envelope {
            src: NodeId(1),
            dst: NodeId(2),
            category: MsgCategory::Diff,
            wire_bytes: 321,
            sent_at: SimTime::from_nanos(17),
            arrival: SimTime::from_nanos(42_000),
            payload: 0xABCDu64,
        };
        let frame = encode_envelope::<u64, U64Codec>(&env);
        let (kind, body) = decode_frame(&frame[4..]).unwrap();
        assert_eq!(kind, FrameKind::Payload);
        let back = decode_envelope::<u64, U64Codec>(body).unwrap();
        assert_eq!(back, env);
        // Trailing garbage is rejected.
        let mut longer = body.to_vec();
        longer.push(0);
        assert!(matches!(
            decode_envelope::<u64, U64Codec>(&longer),
            Err(WireError::TrailingBytes { count: 1 })
        ));
    }
}
