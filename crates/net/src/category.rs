//! Message categories.
//!
//! Figure 5(b) of the paper breaks protocol messages into four categories —
//! `obj` (object fault-in without migration), `mig` (object fault-in that
//! also migrates the home), `diff` (diff propagation) and `redir` (home
//! redirection) — and explicitly excludes synchronization messages because
//! they are invariant across protocols. We tag every message with its
//! category so the harness can reproduce exactly that breakdown, and keep the
//! remaining categories separate for completeness.

use std::fmt;

/// Category of a protocol message, following the paper's breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MsgCategory {
    /// Object fault-in request (a *remote read* from the home's viewpoint).
    ObjRequest,
    /// Object fault-in reply without home migration (`obj` in Figure 5(b)).
    ObjReply,
    /// Object fault-in reply that also migrates the home to the requester
    /// (`mig` in Figure 5(b)).
    ObjReplyMigrate,
    /// Diff propagation to the home at release time (`diff`, a *remote
    /// write* from the home's viewpoint).
    Diff,
    /// Acknowledgement of a diff application (needed so a release completes
    /// only after its writes are visible at the homes).
    DiffAck,
    /// Batched diff propagation: all of one interval's diffs destined for
    /// the *same* home, shipped as one message so k flushes pay one
    /// per-message start-up time instead of k (the dominant term of the
    /// Hockney model on Fast-Ethernet-class interconnects).
    DiffBatch,
    /// Per-entry acknowledgement of a diff batch (applied versions and
    /// redirect hints for entries whose home migrated mid-flight).
    DiffBatchAck,
    /// Redirection reply from an obsolete home (`redir` in Figure 5(b)):
    /// the forwarding-pointer mechanism answers with the current home
    /// location instead of the data.
    Redirect,
    /// Lock acquire request sent to the lock manager.
    LockAcquire,
    /// Lock grant from the manager to the acquirer (carries write notices).
    LockGrant,
    /// Lock release notification to the manager (carries write notices).
    LockRelease,
    /// Barrier arrival (carries write notices).
    BarrierArrive,
    /// Barrier release broadcast (carries merged write notices).
    BarrierRelease,
    /// New-home notification used by the broadcast / home-manager
    /// notification mechanisms (the forwarding-pointer mechanism sends none).
    HomeNotify,
    /// Home-manager lookup request/reply pair (home-manager mechanism only).
    HomeLookup,
    /// Anything else (start-up coordination, shutdown).
    Control,
}

impl MsgCategory {
    /// All categories, in a stable order (used for reporting).
    pub const ALL: [MsgCategory; 16] = [
        MsgCategory::ObjRequest,
        MsgCategory::ObjReply,
        MsgCategory::ObjReplyMigrate,
        MsgCategory::Diff,
        MsgCategory::DiffAck,
        MsgCategory::DiffBatch,
        MsgCategory::DiffBatchAck,
        MsgCategory::Redirect,
        MsgCategory::LockAcquire,
        MsgCategory::LockGrant,
        MsgCategory::LockRelease,
        MsgCategory::BarrierArrive,
        MsgCategory::BarrierRelease,
        MsgCategory::HomeNotify,
        MsgCategory::HomeLookup,
        MsgCategory::Control,
    ];

    /// Whether this category is one of the four the paper plots in the
    /// Figure 5(b) message breakdown (synchronization excluded).
    pub fn in_breakdown(self) -> bool {
        matches!(
            self,
            MsgCategory::ObjReply
                | MsgCategory::ObjReplyMigrate
                | MsgCategory::Diff
                | MsgCategory::DiffBatch
                | MsgCategory::Redirect
        )
    }

    /// Whether this category carries diff propagation to a home — the
    /// messages release-time flush batching collapses (a `DiffBatch` of k
    /// entries replaces k `Diff` messages).
    pub fn is_diff_propagation(self) -> bool {
        matches!(self, MsgCategory::Diff | MsgCategory::DiffBatch)
    }

    /// Whether this category is a synchronization message (invariant across
    /// home-migration protocols, hence excluded from the paper's breakdown).
    pub fn is_synchronization(self) -> bool {
        matches!(
            self,
            MsgCategory::LockAcquire
                | MsgCategory::LockGrant
                | MsgCategory::LockRelease
                | MsgCategory::BarrierArrive
                | MsgCategory::BarrierRelease
        )
    }

    /// Short label used in reports (matches the paper's legend).
    pub fn label(self) -> &'static str {
        match self {
            MsgCategory::ObjRequest => "obj_req",
            MsgCategory::ObjReply => "obj",
            MsgCategory::ObjReplyMigrate => "mig",
            MsgCategory::Diff => "diff",
            MsgCategory::DiffAck => "diff_ack",
            MsgCategory::DiffBatch => "diff_batch",
            MsgCategory::DiffBatchAck => "diff_batch_ack",
            MsgCategory::Redirect => "redir",
            MsgCategory::LockAcquire => "lock_acq",
            MsgCategory::LockGrant => "lock_grant",
            MsgCategory::LockRelease => "lock_rel",
            MsgCategory::BarrierArrive => "bar_arrive",
            MsgCategory::BarrierRelease => "bar_release",
            MsgCategory::HomeNotify => "home_notify",
            MsgCategory::HomeLookup => "home_lookup",
            MsgCategory::Control => "control",
        }
    }
}

impl fmt::Display for MsgCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_lists_every_category_once() {
        let set: HashSet<_> = MsgCategory::ALL.iter().collect();
        assert_eq!(set.len(), MsgCategory::ALL.len());
    }

    #[test]
    fn breakdown_membership_matches_paper() {
        // Figure 5(b) plots exactly four categories: obj, mig, diff, redir.
        // A batched diff is still diff propagation, so it stays in the
        // breakdown; the per-entry ack does not (like `DiffAck`).
        assert!(MsgCategory::ObjReply.in_breakdown());
        assert!(MsgCategory::ObjReplyMigrate.in_breakdown());
        assert!(MsgCategory::Diff.in_breakdown());
        assert!(MsgCategory::DiffBatch.in_breakdown());
        assert!(MsgCategory::Redirect.in_breakdown());
        assert!(!MsgCategory::ObjRequest.in_breakdown());
        assert!(!MsgCategory::LockGrant.in_breakdown());
        assert!(!MsgCategory::DiffAck.in_breakdown());
        assert!(!MsgCategory::DiffBatchAck.in_breakdown());
        assert!(!MsgCategory::Control.in_breakdown());
    }

    #[test]
    fn diff_propagation_covers_single_and_batched_flushes() {
        assert!(MsgCategory::Diff.is_diff_propagation());
        assert!(MsgCategory::DiffBatch.is_diff_propagation());
        assert!(!MsgCategory::DiffAck.is_diff_propagation());
        assert!(!MsgCategory::DiffBatchAck.is_diff_propagation());
        assert!(!MsgCategory::ObjReply.is_diff_propagation());
    }

    #[test]
    fn synchronization_categories() {
        assert!(MsgCategory::LockAcquire.is_synchronization());
        assert!(MsgCategory::BarrierRelease.is_synchronization());
        assert!(!MsgCategory::Diff.is_synchronization());
        assert!(!MsgCategory::HomeNotify.is_synchronization());
    }

    #[test]
    fn labels_match_figure_legend() {
        assert_eq!(MsgCategory::ObjReply.label(), "obj");
        assert_eq!(MsgCategory::ObjReplyMigrate.label(), "mig");
        assert_eq!(MsgCategory::Diff.label(), "diff");
        assert_eq!(MsgCategory::DiffBatch.label(), "diff_batch");
        assert_eq!(MsgCategory::Redirect.label(), "redir");
        assert_eq!(format!("{}", MsgCategory::Redirect), "redir");
    }
}
