//! A small deterministic random number generator.
//!
//! SplitMix64: a 64-bit state advanced by a Weyl constant and finalized with
//! a mixing function. Statistically solid for workload generation and
//! randomized tests, trivially seedable, and identical on every platform —
//! which is what matters here: every simulated node must generate the same
//! graph/bodies/cities from the same seed without communicating.

/// A seeded SplitMix64 generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Create a generator from a seed. Equal seeds produce equal sequences.
    pub fn seed_from_u64(seed: u64) -> Self {
        SmallRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `lo..=hi`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn gen_range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = u64::from(hi - lo) + 1;
        lo + (self.next_u64() % span) as u32
    }

    /// Uniform integer in `0..n`.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range 0..0");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if the range is empty or not finite.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo < hi && lo.is_finite() && hi.is_finite(),
            "bad range {lo}..{hi}"
        );
        lo + self.next_f64() * (hi - lo)
    }
}

/// Parse a seed from user input: hexadecimal with a `0x`/`0X` prefix,
/// decimal otherwise; surrounding whitespace and `_` digit separators are
/// accepted. One parser backs every seed-taking surface (`DSM_SEEDS`, the
/// `sim_matrix --seeds` list, the figure binaries' `--seed`), so the
/// hex-formatted seeds printed by failure reports can be pasted anywhere a
/// seed is read.
pub fn parse_seed(input: &str) -> Result<u64, std::num::ParseIntError> {
    let cleaned = input.trim().replace('_', "");
    match cleaned
        .strip_prefix("0x")
        .or_else(|| cleaned.strip_prefix("0X"))
    {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => cleaned.parse(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_parse_in_hex_and_decimal() {
        assert_eq!(parse_seed("0x51E5_ED01"), Ok(0x51E5_ED01));
        assert_eq!(parse_seed(" 0X10 "), Ok(16));
        assert_eq!(parse_seed("2004"), Ok(2004));
        assert_eq!(parse_seed("1_000"), Ok(1000));
        assert!(parse_seed("zebra").is_err());
        assert!(parse_seed("").is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = rng.gen_range_u32(3, 7);
            assert!((3..=7).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 7;
            let f = rng.gen_range_f64(-2.0, 2.0);
            assert!((-2.0..2.0).contains(&f));
            assert!(rng.gen_index(5) < 5);
        }
        assert!(seen_lo && seen_hi, "both endpoints should appear");
    }

    #[test]
    fn roughly_uniform_buckets() {
        let mut rng = SmallRng::seed_from_u64(99);
        let mut buckets = [0u32; 8];
        for _ in 0..80_000 {
            buckets[rng.gen_index(8)] += 1;
        }
        for b in buckets {
            assert!(
                (9_000..11_000).contains(&b),
                "bucket count {b} far from uniform"
            );
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let _ = SmallRng::seed_from_u64(0).gen_range_u32(5, 4);
    }
}
