//! A poison-ignoring mutex.
//!
//! The simulated cluster aborts the whole process on any node panic (the
//! runtime re-raises application panics after shutdown), so lock poisoning
//! carries no information here; `lock()` simply recovers the inner value,
//! which gives call sites the ergonomic infallible API they were written
//! against.

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock with an infallible, poison-ignoring `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = std::sync::Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
