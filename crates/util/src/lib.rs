//! # dsm-util — dependency-free concurrency and RNG primitives
//!
//! The workspace builds in fully offline environments, so the small pieces
//! that would normally come from `parking_lot`, `crossbeam-channel`, `rand`
//! and `proptest` live here instead:
//!
//! * [`Mutex`] — a poison-ignoring wrapper over `std::sync::Mutex` with the
//!   `parking_lot`-style infallible `lock()`.
//! * [`channel`] — multi-producer channels whose [`channel::Receiver`] is
//!   `Sync` (shareable between a node's application and server threads) and
//!   reports its queue depth.
//! * [`RwCell`] — a reference-counted read/write cell handing out *owned*
//!   guards; the substrate of the runtime's zero-copy object views.
//! * [`SmallRng`] — a deterministic SplitMix64 generator for workload
//!   generation and randomized property tests.
//! * [`LatencyHistogram`] — a fixed-bucket log-linear histogram for
//!   wall-clock latency percentiles (the piece `hdrhistogram` would
//!   normally provide).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod channel;
pub mod histogram;
pub mod rng;
pub mod sync;

pub use cell::{RwCell, RwReadGuard, RwWriteGuard};
pub use histogram::LatencyHistogram;
pub use rng::{parse_seed, SmallRng};
pub use sync::{Mutex, MutexGuard};
