//! A reference-counted read/write cell with *owned* guards.
//!
//! `std::sync::RwLock` guards borrow the lock, which makes it impossible to
//! return a guard together with the `Arc` that keeps the data alive — the
//! exact shape the runtime's object views need (the engine hands out an
//! `Arc<RwCell<ObjectData>>` lease; the view holds the read or write guard
//! across application code without pinning the engine's own mutex).
//! [`RwCell`] implements that shape directly: guards own a clone of the
//! `Arc`, so they are self-contained values with no borrowed lifetime.
//!
//! Writers are exclusive; readers are shared. Acquisition spins with
//! `thread::yield_now`, which is appropriate here because every critical
//! section in the workspace is short (copying an object payload or applying
//! a diff) — long holders (application views) only ever face `try_*`
//! acquirers on the protocol-server side, which defer instead of spinning.
//!
//! This module and `dsm-objspace`'s `raw` module are the only two places
//! in the workspace that use `unsafe`; the invariants are spelled out
//! inline.

#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Writer bit of the state word; the remaining bits count active readers.
const WRITER: u32 = 1 << 31;

/// A shareable cell guarded by a reader/writer spin state.
#[derive(Debug)]
pub struct RwCell<T> {
    state: AtomicU32,
    value: UnsafeCell<T>,
}

// SAFETY: access to `value` is mediated by the reader/writer state machine
// below — at most one `RwWriteGuard` exists at a time and never concurrently
// with an `RwReadGuard` — so sharing the cell between threads is sound
// whenever sharing the value itself is.
unsafe impl<T: Send + Sync> Sync for RwCell<T> {}
unsafe impl<T: Send> Send for RwCell<T> {}

impl<T> RwCell<T> {
    /// Create a cell holding `value`, ready to be wrapped in an [`Arc`].
    pub fn new(value: T) -> Self {
        RwCell {
            state: AtomicU32::new(0),
            value: UnsafeCell::new(value),
        }
    }

    /// Consume the cell and return the value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }

    /// Try to acquire a shared read guard; `None` while a writer is active.
    pub fn try_read(self: &Arc<Self>) -> Option<RwReadGuard<T>> {
        let mut current = self.state.load(Ordering::Relaxed);
        loop {
            if current & WRITER != 0 {
                return None;
            }
            match self.state.compare_exchange_weak(
                current,
                current + 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Some(RwReadGuard {
                        cell: Arc::clone(self),
                    })
                }
                Err(observed) => current = observed,
            }
        }
    }

    /// Acquire a shared read guard, spinning while a writer is active.
    pub fn read(self: &Arc<Self>) -> RwReadGuard<T> {
        loop {
            if let Some(guard) = self.try_read() {
                return guard;
            }
            std::thread::yield_now();
        }
    }

    /// Try to acquire the exclusive write guard; `None` while any reader or
    /// writer is active.
    pub fn try_write(self: &Arc<Self>) -> Option<RwWriteGuard<T>> {
        match self
            .state
            .compare_exchange(0, WRITER, Ordering::Acquire, Ordering::Relaxed)
        {
            Ok(_) => Some(RwWriteGuard {
                cell: Arc::clone(self),
            }),
            Err(_) => None,
        }
    }

    /// Acquire the exclusive write guard, spinning while the cell is busy.
    pub fn write(self: &Arc<Self>) -> RwWriteGuard<T> {
        loop {
            if let Some(guard) = self.try_write() {
                return guard;
            }
            std::thread::yield_now();
        }
    }
}

/// Owned shared guard over an [`RwCell`].
#[derive(Debug)]
pub struct RwReadGuard<T> {
    cell: Arc<RwCell<T>>,
}

impl<T> Deref for RwReadGuard<T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: constructing the guard incremented the reader count, so no
        // write guard exists (and none can be created) until this guard
        // drops; shared access is therefore valid for the guard's lifetime.
        unsafe { &*self.cell.value.get() }
    }
}

impl<T> Drop for RwReadGuard<T> {
    fn drop(&mut self) {
        self.cell.state.fetch_sub(1, Ordering::Release);
    }
}

/// Owned exclusive guard over an [`RwCell`].
#[derive(Debug)]
pub struct RwWriteGuard<T> {
    cell: Arc<RwCell<T>>,
}

impl<T> Deref for RwWriteGuard<T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the writer bit is set, so this guard is the only accessor.
        unsafe { &*self.cell.value.get() }
    }
}

impl<T> DerefMut for RwWriteGuard<T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the writer bit is set, so this guard is the only accessor,
        // and `&mut self` ensures no outstanding `Deref` borrow aliases it.
        unsafe { &mut *self.cell.value.get() }
    }
}

impl<T> Drop for RwWriteGuard<T> {
    fn drop(&mut self) {
        self.cell.state.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_guards_are_shared() {
        let cell = Arc::new(RwCell::new(7u32));
        let a = cell.read();
        let b = cell.read();
        assert_eq!(*a + *b, 14);
        assert!(cell.try_write().is_none(), "readers block writers");
        drop(a);
        assert!(cell.try_write().is_none());
        drop(b);
        assert!(cell.try_write().is_some());
    }

    #[test]
    fn write_guard_is_exclusive() {
        let cell = Arc::new(RwCell::new(0u32));
        let mut w = cell.write();
        *w = 5;
        assert!(cell.try_read().is_none(), "writer blocks readers");
        assert!(cell.try_write().is_none(), "writer blocks writers");
        drop(w);
        assert_eq!(*cell.read(), 5);
    }

    #[test]
    fn guards_keep_the_cell_alive() {
        let cell = Arc::new(RwCell::new(String::from("alive")));
        let guard = cell.read();
        drop(cell);
        assert_eq!(&*guard, "alive");
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let cell = Arc::new(RwCell::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *cell.write() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*cell.read(), 4000);
    }

    #[test]
    fn into_inner_returns_value() {
        assert_eq!(RwCell::new(3u8).into_inner(), 3);
    }
}
