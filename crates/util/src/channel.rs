//! Multi-producer channels with a `Sync` receiver and a queue-depth counter.
//!
//! Built on `std::sync::mpsc`. Two gaps in the standard channels matter to
//! the simulated cluster fabric and are papered over here: the standard
//! `Receiver` is `!Sync` (ours serializes consumers behind a mutex so an
//! endpoint can live in an `Arc` shared by a node's threads) and it cannot
//! report how many messages are queued (ours keeps an atomic depth counter,
//! which the runtime's shutdown logic polls).

use crate::sync::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// Every sender has been dropped and the queue is empty.
    Disconnected,
}

/// Error returned by [`Sender::send`] when the receiver is gone; carries the
/// unsent message back to the caller.
#[derive(Debug)]
pub struct SendError<T>(pub T);

enum Tx<T> {
    Unbounded(mpsc::Sender<T>),
    Bounded(mpsc::SyncSender<T>),
}

impl<T> Clone for Tx<T> {
    fn clone(&self) -> Self {
        match self {
            Tx::Unbounded(tx) => Tx::Unbounded(tx.clone()),
            Tx::Bounded(tx) => Tx::Bounded(tx.clone()),
        }
    }
}

/// Sending half of a channel. Cloneable and shareable between threads.
pub struct Sender<T> {
    tx: Tx<T>,
    depth: Arc<AtomicUsize>,
    high_watermark: Arc<AtomicUsize>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender {
            tx: self.tx.clone(),
            depth: Arc::clone(&self.depth),
            high_watermark: Arc::clone(&self.high_watermark),
        }
    }
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sender").finish_non_exhaustive()
    }
}

impl<T> Sender<T> {
    /// Send a message; for a bounded channel this blocks while the channel
    /// is full. Fails only if the receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let depth = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.high_watermark.fetch_max(depth, Ordering::Relaxed);
        let result = match &self.tx {
            Tx::Unbounded(tx) => tx.send(value).map_err(|e| e.0),
            Tx::Bounded(tx) => tx.send(value).map_err(|e| e.0),
        };
        result.map_err(|value| {
            self.depth.fetch_sub(1, Ordering::Relaxed);
            SendError(value)
        })
    }
}

/// Receiving half of a channel. `Sync`: concurrent consumers serialize on an
/// internal mutex.
pub struct Receiver<T> {
    rx: Mutex<mpsc::Receiver<T>>,
    depth: Arc<AtomicUsize>,
    high_watermark: Arc<AtomicUsize>,
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Receiver")
            .field("len", &self.len())
            .finish_non_exhaustive()
    }
}

impl<T> Receiver<T> {
    fn took(&self, result: Option<T>) -> Option<T> {
        if result.is_some() {
            self.depth.fetch_sub(1, Ordering::Relaxed);
        }
        result
    }

    /// Blocking receive; `None` once every sender is gone and the queue has
    /// drained.
    pub fn recv(&self) -> Option<T> {
        let taken = self.rx.lock().recv().ok();
        self.took(taken)
    }

    /// Receive with a real-time timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let result = self.rx.lock().recv_timeout(timeout);
        match result {
            Ok(value) => {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                Ok(value)
            }
            Err(mpsc::RecvTimeoutError::Timeout) => Err(RecvTimeoutError::Timeout),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(RecvTimeoutError::Disconnected),
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<T> {
        let taken = self.rx.lock().try_recv().ok();
        self.took(taken)
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deepest the queue has ever been: the high-watermark of the depth
    /// counter over the channel's lifetime. The runtime surfaces this per
    /// inbound queue so scheduling stalls (a node falling behind its
    /// arrivals) are observable after the run.
    pub fn max_len(&self) -> usize {
        self.high_watermark.load(Ordering::Relaxed)
    }
}

fn wrap<T>(tx: Tx<T>, rx: mpsc::Receiver<T>) -> (Sender<T>, Receiver<T>) {
    let depth = Arc::new(AtomicUsize::new(0));
    let high_watermark = Arc::new(AtomicUsize::new(0));
    (
        Sender {
            tx,
            depth: Arc::clone(&depth),
            high_watermark: Arc::clone(&high_watermark),
        },
        Receiver {
            rx: Mutex::new(rx),
            depth,
            high_watermark,
        },
    )
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    wrap(Tx::Unbounded(tx), rx)
}

/// Create a bounded channel with the given capacity.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(capacity);
    wrap(Tx::Bounded(tx), rx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_fifo_and_len() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert!(!rx.is_empty());
        assert_eq!(rx.try_recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert!(rx.is_empty());
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn high_watermark_tracks_peak_depth() {
        let (tx, rx) = unbounded();
        assert_eq!(rx.max_len(), 0);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        tx.send(3).unwrap();
        assert_eq!(rx.max_len(), 3);
        assert_eq!(rx.try_recv(), Some(1));
        assert_eq!(rx.try_recv(), Some(2));
        // Draining never lowers the watermark.
        assert_eq!(rx.max_len(), 3);
        tx.send(4).unwrap();
        // Depth only reached 2 this time; the peak stays 3.
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.max_len(), 3);
    }

    #[test]
    fn bounded_oneshot() {
        let (tx, rx) = bounded(1);
        tx.send("reply").unwrap();
        assert_eq!(rx.recv(), Some("reply"));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(100)), Ok(9));
    }

    #[test]
    fn disconnect_is_observable() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), None);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let producer = std::thread::spawn(move || {
            for i in 0..100u64 {
                tx.send(i).unwrap();
            }
        });
        let mut sum = 0;
        for _ in 0..100 {
            sum += rx.recv().unwrap();
        }
        producer.join().unwrap();
        assert_eq!(sum, (0..100).sum::<u64>());
        assert_eq!(rx.len(), 0);
    }
}
