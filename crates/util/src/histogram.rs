//! A fixed-bucket log-linear latency histogram.
//!
//! The throughput harness needs latency percentiles over millions of
//! samples without a dependency on `hdrhistogram`, so this is the classic
//! log-linear scheme in ~8 KiB of fixed state: values are floored to their
//! top four significant bits, giving 16 linear sub-buckets per power of
//! two and a worst-case relative error of 1/16 (≈ 6 %). Recording is a
//! leading-zeros count plus an array increment — cheap enough to sit on a
//! serving fast path — and the bucket layout is value-independent, so
//! histograms from different nodes [`merge`](LatencyHistogram::merge) by
//! adding counts.
//!
//! Values are dimensionless `u64`s; the runtime records nanoseconds.

/// Sub-buckets per power of two (and the log2 of it): values are floored
/// to `SUB` significant steps within their octave.
const SUB: usize = 16;
const SUB_BITS: u32 = 4;

/// Total bucket count: indices `0..SUB` hold the exact small values, then
/// 16 sub-buckets for each of the remaining 60 octaves of a `u64`.
const BUCKETS: usize = SUB + 60 * SUB;

/// A fixed-bucket histogram with ~6 % value resolution over the full `u64`
/// range. See the [module docs](self) for the bucket layout.
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    sum: u128,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("total", &self.total)
            .field("max", &self.max)
            .finish_non_exhaustive()
    }
}

/// The bucket a value lands in. Values below [`SUB`] map to themselves;
/// larger values are floored to their top [`SUB_BITS`] + 1 significant
/// bits, which continues the identity mapping seamlessly (16 maps to
/// index 16).
fn bucket_index(value: u64) -> usize {
    if value < SUB as u64 {
        value as usize
    } else {
        let height = 64 - value.leading_zeros(); // >= SUB_BITS + 1
        let octave = (height - SUB_BITS) as usize;
        let sub = (value >> (height - SUB_BITS - 1)) as usize & (SUB - 1);
        (octave << SUB_BITS) + sub
    }
}

/// The smallest value mapping to `index` — the representative percentile
/// queries report, so reported quantiles are floored by at most one bucket
/// width (≈ 6 %).
fn bucket_floor(index: usize) -> u64 {
    if index < SUB {
        index as u64
    } else {
        let octave = index >> SUB_BITS;
        let sub = (index & (SUB - 1)) as u64;
        (SUB as u64 + sub) << (octave - 1)
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: Box::new([0; BUCKETS]),
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record one value.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.total += 1;
        self.sum += u128::from(value);
        self.max = self.max.max(value);
    }

    /// Record a duration, in nanoseconds.
    pub fn record_duration(&mut self, duration: std::time::Duration) {
        self.record(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest recorded value, exactly (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded values, exactly (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sum as f64 / self.total as f64
    }

    /// The value at quantile `q` in `[0, 1]`: the floor of the bucket
    /// holding the `ceil(q·count)`-th smallest sample (so `percentile(1.0)`
    /// is the floored maximum and `percentile(0.0)` the minimum bucket).
    ///
    /// Degenerate histograms have defined answers rather than bucket
    /// artifacts: an **empty** histogram returns 0 for every quantile
    /// (matching [`max`](Self::max) and [`mean`](Self::mean)), and a
    /// **single-sample** histogram returns that sample *exactly* — every
    /// quantile of a one-point distribution is the point itself, so the
    /// ~6 % bucket flooring would only misreport it.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        if self.total == 1 {
            return self.max;
        }
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= target {
                return bucket_floor(index);
            }
        }
        unreachable!("cumulative bucket counts must reach the total")
    }

    /// Add another histogram's samples into this one (the cross-node merge
    /// of the throughput harness).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..16u64 {
            h.record(v);
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_floor(v as usize), v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.max(), 15);
    }

    #[test]
    fn bucket_mapping_is_monotone_and_floor_is_consistent() {
        // The floor of a value's bucket never exceeds the value, and the
        // next bucket's floor does — on a sweep crossing many octaves.
        let mut previous_index = 0;
        for shift in 0..60 {
            for offset in [0u64, 1, 7, 15] {
                let v = (17u64 << shift) + offset;
                let index = bucket_index(v);
                assert!(index >= previous_index, "index not monotone at {v}");
                previous_index = index;
                assert!(bucket_floor(index) <= v);
                assert!(bucket_floor(index + 1) > v);
            }
        }
        // The largest representable value still fits the table.
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn relative_error_is_bounded_by_one_sixteenth() {
        for v in [100u64, 999, 12_345, 1 << 30, (1 << 40) + 123_456] {
            let floor = bucket_floor(bucket_index(v));
            assert!(floor <= v);
            assert!(
                (v - floor) as f64 / v as f64 <= 1.0 / 16.0 + 1e-12,
                "error too large for {v}: floor {floor}"
            );
        }
    }

    #[test]
    fn percentiles_walk_the_distribution() {
        let mut h = LatencyHistogram::new();
        // 100 samples: 1..=100 microseconds, in nanoseconds.
        for v in 1..=100u64 {
            h.record(v * 1000);
        }
        let p50 = h.percentile(0.50);
        let p99 = h.percentile(0.99);
        // Bucketed values are floored by at most ~6 %.
        assert!((47_000..=50_000).contains(&p50), "p50 = {p50}");
        assert!((93_000..=99_000).contains(&p99), "p99 = {p99}");
        assert!(h.percentile(0.0) <= h.percentile(0.5));
        assert!(h.percentile(0.5) <= h.percentile(1.0));
        assert_eq!(h.max(), 100_000);
        assert!((h.mean() - 50_500.0).abs() < 1e-6);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.percentile(0.95), 0);
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.percentile(1.0), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_sample_percentiles_are_the_sample_itself() {
        // Pick a value whose bucket floor differs from the value, so a
        // regression back to bucket flooring fails loudly.
        let value = 1_000_003u64;
        assert_ne!(bucket_floor(bucket_index(value)), value);
        let mut h = LatencyHistogram::new();
        h.record(value);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.percentile(q), value, "q = {q}");
        }
        assert_eq!(h.max(), value);
        // A second sample returns percentiles to bucket resolution.
        h.record(value);
        assert_eq!(h.percentile(0.5), bucket_floor(bucket_index(value)));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for v in 0..50u64 {
            a.record(v * 1000);
        }
        for v in 50..100u64 {
            b.record(v * 1000);
        }
        let a_only_p50 = a.percentile(0.5);
        a.merge(&b);
        assert_eq!(a.count(), 100);
        assert_eq!(a.max(), 99_000);
        assert!(a.percentile(0.5) > a_only_p50);
    }

    #[test]
    fn record_duration_uses_nanoseconds() {
        let mut h = LatencyHistogram::new();
        h.record_duration(std::time::Duration::from_micros(3));
        assert_eq!(h.max(), 3_000);
    }
}
