//! Cross-crate integration test package.
//!
//! The tests live in `tests/tests/*.rs` and exercise the whole stack —
//! object space, protocol engine, threaded runtime and applications —
//! against the paper's claims. This library target only hosts shared
//! helpers.

#![forbid(unsafe_code)]

use dsm_core::ProtocolConfig;
use dsm_model::ComputeModel;
use dsm_runtime::ClusterConfig;

/// Build a fast (zero-compute-cost) cluster configuration for tests.
pub fn test_cluster(nodes: usize, protocol: ProtocolConfig) -> ClusterConfig {
    dsm_runtime::Cluster::builder()
        .nodes(nodes)
        .protocol(protocol)
        .compute(ComputeModel::free())
        .config()
}

/// As [`test_cluster`], but with the stress-suite fast poll interval so
/// deferred (busy) messages are retried every 100 µs instead of every 2 ms —
/// contention-heavy suites would otherwise spend most of their wall-clock
/// sleeping in the server poll.
pub fn fast_test_cluster(nodes: usize, protocol: ProtocolConfig) -> ClusterConfig {
    dsm_runtime::Cluster::builder()
        .nodes(nodes)
        .protocol(protocol)
        .compute(ComputeModel::free())
        .fast_poll()
        .config()
}
