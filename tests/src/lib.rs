//! Cross-crate integration test package.
//!
//! The tests live in `tests/tests/*.rs` and exercise the whole stack —
//! object space, protocol engine, threaded runtime and applications —
//! against the paper's claims. This library target only hosts shared
//! helpers.

#![forbid(unsafe_code)]

use dsm_core::ProtocolConfig;
use dsm_model::ComputeModel;
use dsm_runtime::{ClusterConfig, FabricMode, SimConfig, TcpConfig};

/// Build a fast (zero-compute-cost) cluster configuration for tests.
pub fn test_cluster(nodes: usize, protocol: ProtocolConfig) -> ClusterConfig {
    dsm_runtime::Cluster::builder()
        .nodes(nodes)
        .protocol(protocol)
        .compute(ComputeModel::free())
        .config()
}

/// As [`test_cluster`], but with the stress-suite fast poll interval so
/// deferred (busy) messages are retried every 100 µs instead of every 2 ms —
/// contention-heavy suites would otherwise spend most of their wall-clock
/// sleeping in the server poll.
pub fn fast_test_cluster(nodes: usize, protocol: ProtocolConfig) -> ClusterConfig {
    dsm_runtime::Cluster::builder()
        .nodes(nodes)
        .protocol(protocol)
        .compute(ComputeModel::free())
        .fast_poll()
        .config()
}

/// As [`test_cluster`], but on the deterministic sim fabric with the given
/// perturbation configuration (event-driven, seed-replayable schedules).
pub fn sim_test_cluster(nodes: usize, protocol: ProtocolConfig, sim: SimConfig) -> ClusterConfig {
    dsm_runtime::Cluster::builder()
        .nodes(nodes)
        .protocol(protocol)
        .compute(ComputeModel::free())
        .fabric(FabricMode::Sim(sim))
        .config()
}

/// As [`test_cluster`], but on the real TCP fabric (`127.0.0.1` sockets,
/// `dsm-wire` framing) with the given timeout configuration. Conformance
/// suites pair this with [`fast_test_cluster`] and assert fingerprint
/// equality.
pub fn tcp_test_cluster(nodes: usize, protocol: ProtocolConfig, tcp: TcpConfig) -> ClusterConfig {
    dsm_runtime::Cluster::builder()
        .nodes(nodes)
        .protocol(protocol)
        .compute(ComputeModel::free())
        .fast_poll()
        .fabric(FabricMode::Tcp(tcp))
        .config()
}

/// The default seed corpus every seeded suite draws from. Chosen once so a
/// failure report ("seed 0x51E5ED02 diverged") replays across suites.
pub const DEFAULT_SEED_CORPUS: [u64; 3] = [0x51E5_ED01, 0x51E5_ED02, 0x51E5_ED03];

/// The shared seed corpus: [`DEFAULT_SEED_CORPUS`] unless the `DSM_SEEDS`
/// environment variable overrides it with a comma/space-separated list of
/// integers (hex with a `0x` prefix, decimal otherwise) — e.g.
/// `DSM_SEEDS=0xBAD5EED,7` replays two specific schedules through every
/// corpus-driven suite without touching code.
///
/// # Panics
/// Panics on an unparsable `DSM_SEEDS` entry or an empty override — a typo
/// silently falling back to the default corpus would fake a reproduction.
pub fn seed_corpus() -> Vec<u64> {
    match std::env::var("DSM_SEEDS") {
        Err(_) => DEFAULT_SEED_CORPUS.to_vec(),
        Ok(raw) => parse_seed_list(&raw)
            .unwrap_or_else(|e| panic!("DSM_SEEDS override {raw:?} is invalid: {e}")),
    }
}

/// Parse a comma/space-separated seed list (the `DSM_SEEDS` format).
///
/// Every malformed entry is an error naming the offending token — an
/// empty list, a leading/trailing/doubled comma or a non-numeric token
/// must never silently shrink the corpus to fewer seeds than the caller's
/// assertions claim.
pub fn parse_seed_list(raw: &str) -> Result<Vec<u64>, String> {
    if raw.trim().is_empty() {
        return Err("it contains no seeds".to_string());
    }
    let fields: Vec<&str> = raw.split(',').collect();
    let last = fields.len() - 1;
    let mut seeds = Vec::new();
    for (i, field) in fields.iter().enumerate() {
        if field.trim().is_empty() {
            let hint = match i {
                0 => "leading comma",
                _ if i == last => "trailing comma",
                _ => "doubled comma",
            };
            return Err(format!("comma-field {} is empty ({hint})", i + 1));
        }
        for token in field.split_whitespace() {
            seeds.push(dsm_util::parse_seed(token).map_err(|e| format!("entry {token:?}: {e}"))?);
        }
    }
    Ok(seeds)
}

/// The `index`-th corpus seed, wrapping around — lets a fixed set of named
/// test functions draw from a corpus of any (overridden) size.
pub fn corpus_seed(index: usize) -> u64 {
    let corpus = seed_corpus();
    corpus[index % corpus.len()]
}

/// Two *distinct* seeds derived from the corpus, for suites that compare
/// schedules across seeds: the first two corpus entries, or a derived
/// second seed when the (overridden) corpus has only one entry.
pub fn seed_pair() -> (u64, u64) {
    let corpus = seed_corpus();
    let first = corpus[0];
    let second = corpus
        .iter()
        .copied()
        .find(|&s| s != first)
        .unwrap_or(first ^ 0x9E37_79B9_7F4A_7C15);
    (first, second)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_lists_parse_hex_decimal_and_mixed_separators() {
        assert_eq!(parse_seed_list("7"), Ok(vec![7]));
        assert_eq!(parse_seed_list("0x10,2"), Ok(vec![16, 2]));
        assert_eq!(parse_seed_list("1, 2 3"), Ok(vec![1, 2, 3]));
        assert_eq!(parse_seed_list(" 1 2 "), Ok(vec![1, 2]));
    }

    #[test]
    fn malformed_seed_lists_fail_loudly_naming_the_token() {
        let empty = parse_seed_list("").unwrap_err();
        assert!(empty.contains("no seeds"), "got: {empty}");
        let blank = parse_seed_list("  ").unwrap_err();
        assert!(blank.contains("no seeds"), "got: {blank}");
        let trailing = parse_seed_list("1,2,").unwrap_err();
        assert!(trailing.contains("trailing comma"), "got: {trailing}");
        let doubled = parse_seed_list("1,,2").unwrap_err();
        assert!(doubled.contains("doubled comma"), "got: {doubled}");
        let leading = parse_seed_list(",1").unwrap_err();
        assert!(leading.contains("leading comma"), "got: {leading}");
        let bad = parse_seed_list("1,banana,3").unwrap_err();
        assert!(bad.contains("\"banana\""), "got: {bad}");
    }

    #[test]
    fn default_corpus_is_used_without_override() {
        // The test runner may set DSM_SEEDS globally; only assert the
        // env-free behaviour when it is absent.
        if std::env::var("DSM_SEEDS").is_err() {
            assert_eq!(seed_corpus(), DEFAULT_SEED_CORPUS.to_vec());
            assert_eq!(corpus_seed(0), DEFAULT_SEED_CORPUS[0]);
            assert_eq!(corpus_seed(3), DEFAULT_SEED_CORPUS[0], "index wraps");
            let (a, b) = seed_pair();
            assert_ne!(a, b);
        }
    }
}
