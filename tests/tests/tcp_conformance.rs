//! TCP fabric conformance: the real-socket transport must be semantically
//! invisible. Every cell run over `127.0.0.1` sockets in the `dsm-wire`
//! binary format must produce the same result fingerprint as the threaded
//! loopback reference, and the membership layer must report a fully alive
//! cluster at the end of a healthy run.
//!
//! Seeds come from the shared corpus (`DSM_SEEDS` overridable), so a
//! failure names the exact seed: "seed 0x51E5ED01 diverged on SOR/tcp".

use dsm_bench::matrix::{self, check_invariants};
use dsm_core::ProtocolConfig;
use dsm_integration_tests::{corpus_seed, seed_corpus};
use dsm_model::NetworkParams;
use dsm_net::{MembershipReport, PeerLiveness, StatsCollector, TcpConfig, TcpFabric};
use dsm_runtime::FabricMode;
use dsm_wire::ProtocolCodec;
use std::time::{Duration, Instant};

/// Run one matrix workload on the TCP fabric and on the threaded loopback
/// reference under a named corpus seed, asserting fingerprint equality,
/// protocol invariants and an all-alive membership view.
fn assert_tcp_conforms(workload_name: &str, protocol: ProtocolConfig, seed: u64) {
    let workload = matrix::workloads()
        .into_iter()
        .find(|w| w.name == workload_name)
        .unwrap_or_else(|| panic!("unknown matrix workload {workload_name}"));

    let reference = workload
        .run(matrix::matrix_cluster(protocol.clone(), FabricMode::Threaded).with_seed(seed));
    let tcp = workload.run(
        matrix::matrix_cluster(protocol.clone(), FabricMode::Tcp(TcpConfig::default()))
            .with_seed(seed),
    );

    assert_eq!(
        tcp.fingerprint, reference.fingerprint,
        "seed {seed:#x} diverged on {workload_name}/tcp: \
         tcp fingerprint {:#018x} != loopback {:#018x}",
        tcp.fingerprint, reference.fingerprint
    );
    let violations = check_invariants(&tcp.report);
    assert!(
        violations.is_empty(),
        "seed {seed:#x} violated protocol invariants on {workload_name}/tcp: {violations:?}"
    );

    let membership = tcp
        .report
        .membership
        .as_ref()
        .expect("TCP runs surface a membership report");
    assert_eq!(membership.views.len(), matrix::MATRIX_NODES);
    assert!(
        membership.all_alive(),
        "seed {seed:#x}: a healthy {workload_name} run ended with a non-alive peer: \
         {membership:?}"
    );
    for view in &membership.views {
        assert_eq!(view.peers.len(), matrix::MATRIX_NODES - 1);
        for peer in &view.peers {
            assert!(
                peer.frames > 0,
                "node {} heard nothing from {} all run",
                view.local,
                peer.node
            );
        }
    }
    assert!(reference.report.membership.is_none());
}

#[test]
fn sor_fingerprint_matches_loopback_over_tcp() {
    assert_tcp_conforms("SOR", ProtocolConfig::adaptive(), corpus_seed(0));
}

#[test]
fn synthetic_fingerprint_matches_loopback_over_tcp() {
    assert_tcp_conforms("synthetic", ProtocolConfig::adaptive(), corpus_seed(1));
}

#[test]
fn tsp_fingerprint_matches_loopback_over_tcp() {
    assert_tcp_conforms("TSP", ProtocolConfig::adaptive(), corpus_seed(2));
}

#[test]
fn kv_fingerprint_matches_loopback_over_tcp() {
    assert_tcp_conforms("KV", ProtocolConfig::adaptive(), corpus_seed(0));
}

/// Every built-in migration policy conforms on the synthetic workload —
/// migration, redirection and batching traffic all cross real sockets.
#[test]
fn every_policy_conforms_on_the_synthetic_workload_over_tcp() {
    for (i, (label, protocol)) in matrix::policies().into_iter().enumerate() {
        let seed = corpus_seed(i);
        let workload = matrix::workloads()
            .into_iter()
            .find(|w| w.name == "synthetic")
            .expect("synthetic workload exists");
        let reference = workload
            .run(matrix::matrix_cluster(protocol.clone(), FabricMode::Threaded).with_seed(seed));
        let tcp = workload.run(
            matrix::matrix_cluster(protocol, FabricMode::Tcp(TcpConfig::default())).with_seed(seed),
        );
        assert_eq!(
            tcp.fingerprint, reference.fingerprint,
            "policy {label} (seed {seed:#x}) diverged between tcp and loopback"
        );
    }
}

/// The corpus sweep on SOR: every corpus seed crosses the sockets and
/// conforms, so an overridden `DSM_SEEDS` list sweeps TCP too.
#[test]
fn sor_conforms_across_the_whole_seed_corpus_over_tcp() {
    for seed in seed_corpus() {
        assert_tcp_conforms("SOR", ProtocolConfig::fixed_threshold(2), seed);
    }
}

/// Poll until `check` passes or the deadline expires.
fn wait_for(what: &str, deadline: Duration, mut check: impl FnMut() -> bool) {
    let start = Instant::now();
    while !check() {
        assert!(
            start.elapsed() < deadline,
            "timed out after {deadline:?} waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Heartbeat liveness transitions through the real protocol codec: a peer
/// that stops heartbeating degrades alive → suspect → dead in the others'
/// views — and death is sticky: once latched dead, resumed heartbeats on
/// the old connection must *not* resurrect the peer (a dead peer may have
/// been deposed in its absence; only an incarnation-fenced rejoin
/// handshake readmits it). Short `fast_liveness` timeouts keep the test
/// fast; transitions are awaited by polling, never asserted after fixed
/// sleeps.
#[test]
fn liveness_degrades_and_death_is_sticky_in_the_membership_report() {
    let stats = StatsCollector::new();
    let fabric = TcpFabric::bind_local::<ProtocolCodec>(
        3,
        NetworkParams::fast_ethernet(),
        stats.clone(),
        TcpConfig::fast_liveness(),
    )
    .expect("bind 3-node fabric on 127.0.0.1");
    let endpoints = fabric.into_endpoints();
    let quiet = endpoints[2].node();

    let liveness_of = |observer: usize| {
        endpoints[observer]
            .membership()
            .liveness(quiet)
            .expect("peer is tracked")
    };

    wait_for("initial all-alive", Duration::from_secs(5), || {
        MembershipReport {
            views: endpoints.iter().map(|e| e.membership()).collect(),
        }
        .all_alive()
    });

    endpoints[2].pause_heartbeats(true);
    wait_for("suspect after silence", Duration::from_secs(5), || {
        liveness_of(0) != PeerLiveness::Alive
    });
    wait_for("dead after longer silence", Duration::from_secs(5), || {
        liveness_of(0) == PeerLiveness::Dead && liveness_of(1) == PeerLiveness::Dead
    });
    assert!(!MembershipReport {
        views: endpoints.iter().map(|e| e.membership()).collect(),
    }
    .all_alive());

    let frames_before = endpoints[0]
        .membership()
        .peers
        .iter()
        .find(|p| p.node == quiet)
        .expect("quiet peer tracked")
        .frames;
    endpoints[2].pause_heartbeats(false);
    // The resumed heartbeats flow (frames keep counting) but the peer
    // stays latched dead in every observer's view.
    wait_for(
        "resumed heartbeats observed",
        Duration::from_secs(5),
        || {
            endpoints[0]
                .membership()
                .peers
                .iter()
                .find(|p| p.node == quiet)
                .expect("quiet peer tracked")
                .frames
                > frames_before
        },
    );
    for observer in [0, 1] {
        assert_eq!(
            liveness_of(observer),
            PeerLiveness::Dead,
            "observer {observer}: a silently-resumed peer must stay latched dead"
        );
    }
    let view = endpoints[0].membership();
    let status = view
        .peers
        .iter()
        .find(|p| p.node == quiet)
        .expect("quiet peer tracked");
    assert_eq!(
        status.recoveries, 0,
        "a refused resurrection must not count as a recovery: {status:?}"
    );

    for ep in &endpoints {
        ep.announce_leave();
    }
    wait_for("leave handshake", Duration::from_secs(5), || {
        endpoints.iter().all(|e| e.all_peers_left())
    });
    for ep in &endpoints {
        ep.finish();
    }
}
