//! Cross-node contention tests for the server-side `Busy`/deferral path and
//! the `DsmError` taxonomy.
//!
//! The guard-semantics suite (`view_guards.rs` in `dsm-runtime`) checks the
//! typed errors in quiet, mostly single-node settings; here the same rules
//! are exercised under *real* cross-node contention on the threaded
//! runtime: a home copy leased to a live write view while remote requests
//! and diffs arrive (server deferral, observable through the new
//! `busy_responses` counter), and the `ViewsOutstanding` /
//! `FetchWithLiveWrites` refusals that keep the deferral scheme
//! deadlock-free when both sides hold leases at once.

use dsm_core::ProtocolConfig;
use dsm_integration_tests::fast_test_cluster;
use dsm_objspace::{BarrierId, DsmError, HomeAssignment, LockId, NodeId, ObjectRegistry};
use dsm_runtime::{ArrayHandle, Cluster};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// A remote fault-in arriving while the home copy is leased to a write view
/// is deferred (`Busy`), not blocked on, and completes once the view drops.
/// The requester observes the value written *under* the lease — nothing is
/// served from a half-written copy.
#[test]
fn stress_busy_request_defers_until_write_view_drops() {
    let mut registry = ObjectRegistry::new();
    let data: ArrayHandle<u64> = ArrayHandle::register(
        &mut registry,
        "busy.req",
        0,
        8,
        NodeId::MASTER,
        HomeAssignment::Master,
    );
    // Real-time rendezvous between the two application threads: the ctx
    // barrier would refuse to run with a live view (by design), which is
    // exactly what this test needs to step around.
    let rendezvous = Arc::new(Barrier::new(2));

    let report = Cluster::new(
        fast_test_cluster(2, ProtocolConfig::no_migration()),
        registry,
    )
    .run(move |ctx| {
        if ctx.node_id() == NodeId::MASTER {
            // Home side: take the write lease, then let node 1 fire its
            // fault-in straight into the lease window.
            let mut view = ctx.view_mut(&data);
            view[0] = 41;
            rendezvous.wait();
            // Keep the lease long enough that the request (sent right
            // after the rendezvous) arrives while it is still held and
            // must be deferred at least once.
            std::thread::sleep(Duration::from_millis(25));
            view[0] = 42;
            drop(view);
        } else {
            rendezvous.wait();
            // Fault-in while the home lease is held: the home's server
            // defers the request; this call simply blocks until the view
            // drops — no deadlock, no torn read.
            let seen = ctx.view(&data)[0];
            assert_eq!(seen, 42, "the deferred request must see the final value");
        }
        ctx.barrier(BarrierId(1));
    });
    assert!(
        report.protocol.busy_responses >= 1,
        "the fault-in must have found the home copy busy at least once \
         (busy_responses = {})",
        report.protocol.busy_responses
    );
    assert_eq!(report.protocol.requests_served, 1);
}

/// A diff flush arriving while the home copy is leased is likewise deferred
/// and applied afterwards — the writer's release blocks (on the network,
/// with no leases of its own) but the cluster keeps making progress.
#[test]
fn stress_busy_diff_defers_until_write_view_drops() {
    let mut registry = ObjectRegistry::new();
    let data: ArrayHandle<u64> = ArrayHandle::register(
        &mut registry,
        "busy.diff",
        0,
        8,
        NodeId::MASTER,
        HomeAssignment::Master,
    );
    let lock = LockId::derive("busy.diff.lock");
    // Two-phase rendezvous: (A) node 1 has faulted the object in and holds
    // a dirty copy, master has not leased yet; (B) master's write lease is
    // live, node 1 may now flush into it.
    let dirty = Arc::new(Barrier::new(2));
    let leased = Arc::new(Barrier::new(2));

    let report = Cluster::new(
        fast_test_cluster(2, ProtocolConfig::no_migration()),
        registry,
    )
    .run(move |ctx| {
        if ctx.node_id() == NodeId(1) {
            // Produce a dirty cached copy inside a critical section while
            // the home copy is unleased (the fault-in must not defer).
            ctx.acquire(lock);
            ctx.view_mut(&data)[1] = 7;
            dirty.wait();
            leased.wait();
            // The release flushes the diff straight into the master's
            // lease window; the master's server defers it (Busy) and
            // applies it once the view drops. This blocks only on the
            // network — node 1 holds no leases of its own here.
            ctx.release(lock);
            ctx.barrier(BarrierId(2));
        } else {
            dirty.wait();
            // Lease the home copy across the window in which node 1's
            // diff arrives.
            let mut view = ctx.view_mut(&data);
            view[0] = 1;
            leased.wait();
            std::thread::sleep(Duration::from_millis(25));
            drop(view);
            ctx.barrier(BarrierId(2));
            // Synchronize and observe both writes merged: the home write
            // went into the payload in place, the deferred diff on top.
            ctx.acquire(lock);
            {
                let view = ctx.view(&data);
                assert_eq!(view[0], 1, "home write survived the diff");
                assert_eq!(view[1], 7, "deferred diff was applied");
            }
            ctx.release(lock);
        }
    });
    assert!(
        report.protocol.busy_responses >= 1,
        "the diff must have found the home copy busy at least once \
         (busy_responses = {})",
        report.protocol.busy_responses
    );
    assert_eq!(report.protocol.diffs_applied, 1);
}

/// Under cross-node contention the synchronization quiescence rule holds on
/// every node: whoever holds views cannot acquire/release/barrier, with the
/// live-view count reported in the error, while the other node's protocol
/// traffic proceeds.
#[test]
fn stress_views_outstanding_is_reported_under_contention() {
    let mut registry = ObjectRegistry::new();
    let mine: ArrayHandle<u64> = ArrayHandle::register(
        &mut registry,
        "quiesce.mine",
        0,
        4,
        NodeId::MASTER,
        HomeAssignment::RoundRobin,
    );
    let yours: ArrayHandle<u64> = ArrayHandle::register(
        &mut registry,
        "quiesce.yours",
        1,
        4,
        NodeId::MASTER,
        HomeAssignment::RoundRobin,
    );
    let lock = LockId::derive("quiesce.lock");

    Cluster::new(fast_test_cluster(2, ProtocolConfig::adaptive()), registry).run(move |ctx| {
        // Both nodes hold two read views (their own object is homed
        // round-robin, the other one faults in) and try to synchronize.
        let local = if ctx.is_master() { &mine } else { &yours };
        let remote = if ctx.is_master() { &yours } else { &mine };
        let a = ctx.view(local);
        let b = ctx.view(remote);
        assert_eq!(
            ctx.try_acquire(lock).err(),
            Some(DsmError::ViewsOutstanding { count: 2 }),
            "acquire with live views must fail with the exact count"
        );
        assert_eq!(
            ctx.try_barrier(BarrierId(3)).err(),
            Some(DsmError::ViewsOutstanding { count: 2 })
        );
        drop(a);
        drop(b);
        // Quiescent again: the distributed synchronization works for both
        // contending nodes.
        ctx.synchronized(lock, || {
            ctx.view_mut(local)[0] += 1;
        });
        ctx.barrier(BarrierId(3));
    });
}

/// The anti-deadlock fetch rule under mutual contention: while a node holds
/// a *write* lease, any access needing a remote fault-in is refused with
/// `FetchWithLiveWrites` — even as the peer node does exactly the same —
/// and both sides make progress once the leases drop. Read leases do not
/// trigger the rule.
#[test]
fn stress_fetch_with_live_writes_is_refused_symmetrically() {
    let mut registry = ObjectRegistry::new();
    // One object homed on each node (round-robin over two nodes).
    let on_master: ArrayHandle<u64> = ArrayHandle::register(
        &mut registry,
        "fetch.m",
        0,
        4,
        NodeId::MASTER,
        HomeAssignment::RoundRobin,
    );
    let on_worker: ArrayHandle<u64> = ArrayHandle::register(
        &mut registry,
        "fetch.w",
        1,
        4,
        NodeId::MASTER,
        HomeAssignment::RoundRobin,
    );
    let rendezvous = Arc::new(Barrier::new(2));

    Cluster::new(
        fast_test_cluster(2, ProtocolConfig::no_migration()),
        registry,
    )
    .run(move |ctx| {
        let (local, remote) = if ctx.is_master() {
            (&on_master, &on_worker)
        } else {
            (&on_worker, &on_master)
        };
        // Symmetric write leases on both nodes at the same instant.
        let w = ctx.view_mut(local);
        rendezvous.wait();
        // A remote fetch now would park both nodes behind each other's
        // deferral queues forever; the context refuses it instead.
        match ctx.try_view(remote) {
            Err(DsmError::FetchWithLiveWrites { writers, .. }) => assert_eq!(writers, 1),
            other => panic!("expected FetchWithLiveWrites, got {other:?}"),
        }
        assert!(matches!(
            ctx.try_view_mut(remote),
            Err(DsmError::FetchWithLiveWrites { .. })
        ));
        drop(w);
        // With only a *read* lease the same fetch is allowed (serving a
        // fault-in needs a shared payload lock, so the peer's server can
        // still reply while we block).
        let r = ctx.view(local);
        let fetched = ctx.view(remote);
        assert_eq!(fetched[0], 0);
        drop(fetched);
        drop(r);
        ctx.barrier(BarrierId(4));
    });
}
