//! The policy × workload conformance matrix on the deterministic sim
//! fabric (the grid is defined once in `dsm_bench::matrix`; the reduced CI
//! sweep and the weekly extended sweep run the same cells through the
//! `sim_matrix` binary).
//!
//! For every workload × policy cell, under the shared seed corpus
//! (`DSM_SEEDS` overridable):
//!
//! * the sim-fabric result fingerprint equals the threaded-fabric
//!   reference — message schedules are performance, never semantics;
//! * the same seed replays a **bit-identical delivery trace**;
//! * two distinct seeds yield **different delivery orders** yet identical
//!   results;
//! * the protocol invariants hold: no lost flush acks, migration
//!   conservation, trace/statistics message-count reconciliation, per-link
//!   FIFO delivery;
//! * and (separately) the single-home-per-epoch invariant holds at every
//!   synchronization point of a migration-churn run.
//!
//! Every assertion message names the seed, so a failure is a replay recipe.

use dsm_bench::matrix::{self, MatrixWorkload};
use dsm_core::{MigrationPolicy, ProtocolConfig};
use dsm_integration_tests::{seed_pair, sim_test_cluster};
use dsm_objspace::{BarrierId, HomeAssignment, LockId, NodeId, ObjectRegistry};
use dsm_runtime::{ArrayHandle, Cluster, FabricMode, SimConfig};

/// Run every policy against `workload` under the corpus seeds and check
/// the conformance claims cell by cell.
fn conformance_for(workload: &MatrixWorkload) {
    let (seed_a, seed_b) = seed_pair();
    for (policy, protocol) in matrix::policies() {
        let cell = format!("{} x {policy}", workload.name);
        let reference = workload.run(matrix::matrix_cluster(
            protocol.clone(),
            FabricMode::Threaded,
        ));

        let sim = |seed: u64| {
            workload.run(matrix::matrix_cluster(
                protocol.clone(),
                FabricMode::Sim(SimConfig::perturbed(seed)),
            ))
        };
        let run_a = sim(seed_a);
        let replay_a = sim(seed_a);
        let run_b = sim(seed_b);

        // Checksums: sim == threaded reference, for every seed.
        for (seed, run) in [(seed_a, &run_a), (seed_a, &replay_a), (seed_b, &run_b)] {
            assert_eq!(
                run.fingerprint, reference.fingerprint,
                "{cell}: seed {seed:#x} changed the application result"
            );
            let violations = matrix::check_invariants(&run.report);
            assert!(
                violations.is_empty(),
                "{cell}: seed {seed:#x}: {violations:?}"
            );
        }

        // Same seed ⇒ bit-identical delivery trace.
        let trace_a = run_a.report.delivery_trace.as_ref().unwrap();
        let trace_replay = replay_a.report.delivery_trace.as_ref().unwrap();
        assert_eq!(
            trace_a,
            trace_replay,
            "{cell}: seed {seed_a:#x} did not replay bit-identically \
             (checksums {:#x} vs {:#x})",
            trace_a.checksum(),
            trace_replay.checksum()
        );

        // Distinct seeds ⇒ provably different delivery orders.
        let trace_b = run_b.report.delivery_trace.as_ref().unwrap();
        assert_ne!(
            trace_a.order_signature(),
            trace_b.order_signature(),
            "{cell}: seeds {seed_a:#x} and {seed_b:#x} produced the same \
             delivery order — perturbations had no effect"
        );
    }
}

#[test]
fn matrix_sor_conforms_across_policies_and_seeds() {
    conformance_for(&matrix::workloads()[0]);
}

#[test]
fn matrix_asp_conforms_across_policies_and_seeds() {
    conformance_for(&matrix::workloads()[1]);
}

#[test]
fn matrix_tsp_conforms_across_policies_and_seeds() {
    conformance_for(&matrix::workloads()[2]);
}

#[test]
fn matrix_nbody_conforms_across_policies_and_seeds() {
    conformance_for(&matrix::workloads()[3]);
}

#[test]
fn matrix_synthetic_conforms_across_policies_and_seeds() {
    conformance_for(&matrix::workloads()[4]);
}

#[test]
fn matrix_workload_order_is_the_documented_one() {
    // The per-workload tests above index into the list; a re-ordering must
    // fail loudly here rather than silently swap the cells under test.
    let names: Vec<&str> = matrix::workloads().iter().map(|w| w.name).collect();
    assert_eq!(names, ["SOR", "ASP", "TSP", "Nbody", "synthetic"]);
    let policies: Vec<String> = matrix::policies().into_iter().map(|(l, _)| l).collect();
    assert_eq!(
        policies,
        ["NM", "FT2", "AT", "JUMP", "LAZY", "HYST1+2", "EWMA"]
    );
}

/// Single home per epoch, checked in-run under maximum migration churn:
/// rotating writers under JUMP migrate the watched objects continuously,
/// and at every verification point exactly one node considers itself the
/// home of each object.
#[test]
fn matrix_single_home_per_epoch_under_churn() {
    const OBJECTS: usize = 3;
    const ROUNDS: usize = 8;
    let nodes = 4;
    for seed in [seed_pair().0, seed_pair().1] {
        let mut registry = ObjectRegistry::new();
        let handles: Vec<ArrayHandle<u64>> = (0..OBJECTS)
            .map(|i| {
                ArrayHandle::register(
                    &mut registry,
                    "matrix.home",
                    i as u64,
                    nodes,
                    NodeId::MASTER,
                    HomeAssignment::RoundRobin,
                )
            })
            .collect();
        let home_bits: Vec<ArrayHandle<u64>> = (0..OBJECTS)
            .map(|i| {
                ArrayHandle::register(
                    &mut registry,
                    "matrix.homebits",
                    i as u64,
                    nodes,
                    NodeId::MASTER,
                    HomeAssignment::Master,
                )
            })
            .collect();
        let lock = LockId::derive("matrix.home.lock");
        let check = BarrierId(0x51);
        let protocol =
            ProtocolConfig::no_migration().with_migration(MigrationPolicy::MigrateOnRequest);
        let config = sim_test_cluster(nodes, protocol, SimConfig::perturbed(seed));
        Cluster::new(config, registry).run(move |ctx| {
            let me = ctx.node_id().index();
            for round in 0..ROUNDS {
                let obj = (round + me) % OBJECTS;
                ctx.synchronized(lock, || {
                    ctx.view_mut(&handles[obj])[me] += 1;
                });
                ctx.barrier(check);
                // Publish this node's is-home observation for every object,
                // then verify the cluster-wide sum is exactly one. No
                // traffic touches the watched objects between the two
                // barriers, so the homes cannot move mid-check.
                for (i, handle) in handles.iter().enumerate() {
                    let is_home = u64::from(ctx.is_home(handle));
                    ctx.synchronized(lock, || {
                        ctx.view_mut(&home_bits[i])[me] = is_home;
                    });
                }
                ctx.barrier(check);
                for (i, bits) in home_bits.iter().enumerate() {
                    let view = ctx.view(bits);
                    let homes: u64 = view.iter().sum();
                    assert_eq!(
                        homes, 1,
                        "seed {seed:#x}, round {round}: object {i} has {homes} homes \
                         (want exactly one)"
                    );
                }
                ctx.barrier(check);
            }
        });
    }
}
