//! The policy × workload conformance matrix on the deterministic sim
//! fabric (the grid is defined once in `dsm_bench::matrix`; the reduced CI
//! sweep and the weekly extended sweep run the same cells through the
//! `sim_matrix` binary).
//!
//! For every workload × policy cell, under the shared seed corpus
//! (`DSM_SEEDS` overridable):
//!
//! * the sim-fabric result fingerprint equals the threaded-fabric
//!   reference — message schedules are performance, never semantics;
//! * the same seed replays a **bit-identical delivery trace**;
//! * two distinct seeds yield **different delivery orders** yet identical
//!   results;
//! * the protocol invariants hold: no lost flush acks, migration
//!   conservation, trace/statistics message-count reconciliation, per-link
//!   FIFO delivery;
//! * the same claims hold under **injected faults** ([`SimConfig::lossy`]:
//!   1% seeded per-link drops plus a partition/heal cycle) — timeouts,
//!   idempotent retries and home re-election turn message loss into a
//!   performance event, never a semantic one;
//! * the **parallel frontier scheduler** ([`SimConfig::with_workers`] > 1)
//!   replays the single-worker schedule bit-identically at 2 and 4 workers,
//!   clean and under loss — worker count is an execution knob, never a
//!   schedule change;
//! * a home node **going dark mid-run** triggers a deterministic home
//!   re-election and the workload still completes with the right answer;
//! * and (separately) the single-home-per-epoch invariant holds at every
//!   synchronization point of a migration-churn run.
//!
//! Every assertion message names the seed, so a failure is a replay recipe.

use dsm_bench::matrix::{self, MatrixWorkload};
use dsm_core::{MigrationPolicy, ProtocolConfig};
use dsm_integration_tests::{seed_pair, sim_test_cluster};
use dsm_model::{ComputeModel, NetworkParams, SimDuration, SimTime};
use dsm_net::PauseSpec;
use dsm_objspace::{BarrierId, HomeAssignment, LockId, NodeId, ObjectRegistry};
use dsm_runtime::{ArrayHandle, Cluster, ExecutionReport, FabricMode, SimConfig};

/// Run every policy against `workload` under the corpus seeds and check
/// the conformance claims cell by cell.
fn conformance_for(workload: &MatrixWorkload) {
    let (seed_a, seed_b) = seed_pair();
    for (policy, protocol) in matrix::policies() {
        let cell = format!("{} x {policy}", workload.name);
        let reference = workload.run(matrix::matrix_cluster(
            protocol.clone(),
            FabricMode::Threaded,
        ));

        let sim = |seed: u64| {
            workload.run(matrix::matrix_cluster(
                protocol.clone(),
                FabricMode::Sim(SimConfig::perturbed(seed)),
            ))
        };
        let run_a = sim(seed_a);
        let replay_a = sim(seed_a);
        let run_b = sim(seed_b);

        // Checksums: sim == threaded reference, for every seed.
        for (seed, run) in [(seed_a, &run_a), (seed_a, &replay_a), (seed_b, &run_b)] {
            assert_eq!(
                run.fingerprint, reference.fingerprint,
                "{cell}: seed {seed:#x} changed the application result"
            );
            let violations = matrix::check_invariants(&run.report);
            assert!(
                violations.is_empty(),
                "{cell}: seed {seed:#x}: {violations:?}"
            );
        }

        // Same seed ⇒ bit-identical delivery trace.
        let trace_a = run_a.report.delivery_trace.as_ref().unwrap();
        let trace_replay = replay_a.report.delivery_trace.as_ref().unwrap();
        assert_eq!(
            trace_a,
            trace_replay,
            "{cell}: seed {seed_a:#x} did not replay bit-identically \
             (checksums {:#x} vs {:#x})",
            trace_a.checksum(),
            trace_replay.checksum()
        );

        // Distinct seeds ⇒ provably different delivery orders.
        let trace_b = run_b.report.delivery_trace.as_ref().unwrap();
        assert_ne!(
            trace_a.order_signature(),
            trace_b.order_signature(),
            "{cell}: seeds {seed_a:#x} and {seed_b:#x} produced the same \
             delivery order — perturbations had no effect"
        );
    }
}

#[test]
fn matrix_sor_conforms_across_policies_and_seeds() {
    conformance_for(&matrix::workloads()[0]);
}

#[test]
fn matrix_asp_conforms_across_policies_and_seeds() {
    conformance_for(&matrix::workloads()[1]);
}

#[test]
fn matrix_tsp_conforms_across_policies_and_seeds() {
    conformance_for(&matrix::workloads()[2]);
}

#[test]
fn matrix_nbody_conforms_across_policies_and_seeds() {
    conformance_for(&matrix::workloads()[3]);
}

#[test]
fn matrix_synthetic_conforms_across_policies_and_seeds() {
    conformance_for(&matrix::workloads()[4]);
}

#[test]
fn matrix_kv_conforms_across_policies_and_seeds() {
    conformance_for(&matrix::workloads()[5]);
}

#[test]
fn matrix_workload_order_is_the_documented_one() {
    // The per-workload tests above index into the list; a re-ordering must
    // fail loudly here rather than silently swap the cells under test.
    let names: Vec<&str> = matrix::workloads().iter().map(|w| w.name).collect();
    assert_eq!(names, ["SOR", "ASP", "TSP", "Nbody", "synthetic", "KV"]);
    let policies: Vec<String> = matrix::policies().into_iter().map(|(l, _)| l).collect();
    assert_eq!(
        policies,
        ["NM", "FT2", "AT", "JUMP", "LAZY", "HYST1+2", "EWMA"]
    );
}

/// Run every policy against `workload` under the corpus seeds with
/// injected faults (`SimConfig::lossy`: 1% seeded per-link drops plus a
/// partition/heal cycle) and check that every conformance claim survives:
/// identical fingerprints, clean invariants (drop-aware reconciliation)
/// and bit-identical replay, drop records included.
fn lossy_conformance_for(workload: &MatrixWorkload) {
    let (seed_a, seed_b) = seed_pair();
    let mut injected_drops = 0usize;
    for (policy, protocol) in matrix::policies() {
        let cell = format!("{} x {policy} (lossy)", workload.name);
        let reference = workload.run(matrix::matrix_cluster(
            protocol.clone(),
            FabricMode::Threaded,
        ));

        let sim = |seed: u64| {
            workload.run(matrix::matrix_cluster(
                protocol.clone(),
                FabricMode::Sim(SimConfig::lossy(seed)),
            ))
        };
        let run_a = sim(seed_a);
        let replay_a = sim(seed_a);
        let run_b = sim(seed_b);

        for (seed, run) in [(seed_a, &run_a), (seed_a, &replay_a), (seed_b, &run_b)] {
            assert_eq!(
                run.fingerprint, reference.fingerprint,
                "{cell}: seed {seed:#x} changed the application result under loss"
            );
            let violations = matrix::check_invariants(&run.report);
            assert!(
                violations.is_empty(),
                "{cell}: seed {seed:#x}: {violations:?}"
            );
        }

        // Same seed ⇒ bit-identical delivery trace, drops included.
        let trace_a = run_a.report.delivery_trace.as_ref().unwrap();
        let trace_replay = replay_a.report.delivery_trace.as_ref().unwrap();
        assert_eq!(
            trace_a,
            trace_replay,
            "{cell}: seed {seed_a:#x} did not replay bit-identically under loss \
             (checksums {:#x} vs {:#x})",
            trace_a.checksum(),
            trace_replay.checksum()
        );

        let trace_b = run_b.report.delivery_trace.as_ref().unwrap();
        injected_drops += trace_a.drops.len() + trace_b.drops.len();
    }
    // The sweep is only meaningful if the fault injection actually bit:
    // across a whole workload's cells and two seeds, something must drop.
    assert!(
        injected_drops > 0,
        "{}: no message was ever dropped across the lossy sweep — \
         the fault injection did not engage",
        workload.name
    );
}

#[test]
fn matrix_sor_conforms_under_lossy_faults() {
    lossy_conformance_for(&matrix::workloads()[0]);
}

#[test]
fn matrix_asp_conforms_under_lossy_faults() {
    lossy_conformance_for(&matrix::workloads()[1]);
}

#[test]
fn matrix_tsp_conforms_under_lossy_faults() {
    lossy_conformance_for(&matrix::workloads()[2]);
}

#[test]
fn matrix_nbody_conforms_under_lossy_faults() {
    lossy_conformance_for(&matrix::workloads()[3]);
}

#[test]
fn matrix_synthetic_conforms_under_lossy_faults() {
    lossy_conformance_for(&matrix::workloads()[4]);
}

#[test]
fn matrix_kv_conforms_under_lossy_faults() {
    lossy_conformance_for(&matrix::workloads()[5]);
}

/// Same seed ⇒ bit-identical delivery trace **regardless of worker
/// count**: sweep the corpus seeds through the parallel frontier scheduler
/// at 2 and 4 workers and require every run to reproduce the single-worker
/// reference exactly — full [`DeliveryTrace`] equality (checksum and order
/// signature named on failure) plus the application fingerprint. The
/// single-worker schedule is the semantic reference; the worker pool is an
/// execution strategy, so any divergence here is a determinism bug in the
/// frontier selection or the canonical merge, never an acceptable
/// reordering.
///
/// The sweep also proves the parallel path actually engaged: across the
/// corpus, the scheduler must have dispatched at least one conflict-free
/// frontier to the pool (otherwise the equality above is vacuous — a
/// scheduler that silently fell back to sequential stepping would pass).
fn parallel_replay_for(workload: &MatrixWorkload, sim_config: fn(u64) -> SimConfig, flavor: &str) {
    let (_, protocol) = matrix::policies()
        .into_iter()
        .find(|(label, _)| label == "AT")
        .expect("the adaptive policy is in the matrix");
    let mut dispatched_frontiers = 0u64;
    for seed in dsm_integration_tests::seed_corpus() {
        let run_with = |workers: usize| {
            workload.run(matrix::matrix_cluster(
                protocol.clone(),
                FabricMode::Sim(sim_config(seed).with_workers(workers)),
            ))
        };
        let reference = run_with(1);
        let reference_trace = reference.report.delivery_trace.as_ref().unwrap();
        for workers in [2usize, 4] {
            let cell = format!("{} x AT ({flavor}, {workers} workers)", workload.name);
            let parallel = run_with(workers);
            assert_eq!(
                parallel.fingerprint, reference.fingerprint,
                "{cell}: seed {seed:#x} changed the application result"
            );
            let trace = parallel.report.delivery_trace.as_ref().unwrap();
            assert_eq!(
                trace,
                reference_trace,
                "{cell}: seed {seed:#x} diverged from the single-worker reference \
                 (checksums {:#x} vs {:#x}, order signature {})",
                trace.checksum(),
                reference_trace.checksum(),
                if trace.order_signature() == reference_trace.order_signature() {
                    "equal — payload or timing drift"
                } else {
                    "diverged — events were reordered"
                }
            );
            let scheduler =
                parallel.report.scheduler.as_ref().unwrap_or_else(|| {
                    panic!("{cell}: no scheduler report from a parallel sim run")
                });
            assert_eq!(scheduler.mode, "sim-parallel", "{cell}");
            dispatched_frontiers += scheduler.frontiers;
        }
    }
    assert!(
        dispatched_frontiers > 0,
        "{} ({flavor}): no conflict-free frontier was ever dispatched across the \
         corpus — the parallel scheduler never engaged and the equality checks \
         above are vacuous",
        workload.name
    );
}

#[test]
fn matrix_sor_replays_bit_identically_across_worker_counts() {
    parallel_replay_for(&matrix::workloads()[0], SimConfig::perturbed, "perturbed");
}

#[test]
fn matrix_kv_replays_bit_identically_across_worker_counts() {
    parallel_replay_for(&matrix::workloads()[5], SimConfig::perturbed, "perturbed");
}

#[test]
fn matrix_sor_replays_bit_identically_across_worker_counts_under_loss() {
    parallel_replay_for(&matrix::workloads()[0], SimConfig::lossy, "lossy");
}

/// A home node goes dark mid-run (seeded node-pause injection) while
/// another node needs its object: the stalled request times out, fails
/// over to a deterministic home re-election at the object's arbiter, the
/// election winner serves the access from its cached copy, the deposed
/// home is fenced when it heals — and the workload completes with the
/// right answer, bit-identically replayable from the seed.
#[test]
fn matrix_home_crash_triggers_reelection_and_workload_completes() {
    const NODES: usize = 4;
    // Node 1 (the object's creation home AND manager, so the arbiter
    // falls over to node 2) goes dark for a 4 ms virtual-time window.
    let pause = PauseSpec {
        node: 1,
        from: SimTime::from_micros(10_000.0),
        until: SimTime::from_micros(14_000.0),
    };
    let run = |seed: u64| -> ExecutionReport {
        let mut registry = ObjectRegistry::new();
        let x: ArrayHandle<u64> = ArrayHandle::register(
            &mut registry,
            "matrix.crash",
            0,
            NODES,
            NodeId(1),
            HomeAssignment::CreationNode,
        );
        let lock = LockId::derive("matrix.crash.lock");
        let gate = BarrierId(0x52);
        // The ideal (1 µs start-up) network keeps the bootstrap phases in
        // the tens of microseconds of virtual time, so the explicit
        // `charge` below places the write phase inside the pause window
        // with plenty of margin on both sides.
        let config = Cluster::builder()
            .nodes(NODES)
            .protocol(ProtocolConfig::no_migration())
            .compute(ComputeModel::free())
            .network(NetworkParams::ideal())
            .fabric(FabricMode::Sim(
                SimConfig::perturbed(seed).with_pause(pause),
            ))
            .config();
        Cluster::new(config, registry).run(move |ctx| {
            let me = ctx.node_id().index();
            // Bootstrap: the home seeds the value; node 3 caches a copy
            // (it will be the only live node able to win the election).
            if me == 1 {
                ctx.synchronized(lock, || ctx.view_mut(&x)[0] = 42);
            }
            ctx.barrier(gate);
            if me == 3 {
                assert_eq!(ctx.view(&x)[0], 42);
            }
            ctx.barrier(gate);
            // March every node except the victim into the pause window;
            // node 1 parks at the next barrier *before* the window opens
            // and goes dark for its duration.
            if me != 1 {
                ctx.charge(SimDuration::from_micros(10_500.0));
            }
            if me == 3 {
                // The write faults in X from home node 1 — which is dark.
                // The request times out, fails over to the arbiter (node
                // 2), node 3 wins the election with its cached copy and
                // serves its own access as the new home.
                ctx.synchronized(lock, || ctx.view_mut(&x)[0] = 43);
            }
            ctx.barrier(gate);
            // Everyone — including the healed, fenced node 1 — reads the
            // post-crash value through the re-elected home.
            assert_eq!(
                ctx.view(&x)[0],
                43,
                "node {me} read a stale value after the home went dark"
            );
            ctx.barrier(gate);
        })
    };

    let seed = seed_pair().0;
    let report = run(seed);
    let p = &report.protocol;
    assert!(
        p.elections >= 1,
        "seed {seed:#x}: the dark home never triggered an election ({p:?})"
    );
    assert!(
        p.homes_fenced >= 1,
        "seed {seed:#x}: the deposed home was never fenced ({p:?})"
    );
    let trace = report.delivery_trace.as_ref().unwrap();
    assert!(
        !trace.drops.is_empty(),
        "seed {seed:#x}: the pause window never dropped a message"
    );
    let violations = matrix::check_invariants(&report);
    assert!(violations.is_empty(), "seed {seed:#x}: {violations:?}");

    // The whole recovery story — timeout, election, fence, completion —
    // replays bit-identically from the seed.
    let replay = run(seed);
    assert_eq!(
        report.delivery_trace, replay.delivery_trace,
        "seed {seed:#x}: the crash/re-election run did not replay bit-identically"
    );
    assert_eq!(p.elections, replay.protocol.elections);
    assert_eq!(p.homes_fenced, replay.protocol.homes_fenced);
}

/// The `contention_errors.rs` Busy-deferral scenario, ported from its
/// threaded-only real-time form (std `Barrier` rendezvous + sleeps) to a
/// seeded sim sweep: node 1 takes a read lease on its locally-homed object
/// and *keeps it live across a long fault-in sequence* — in sim mode an
/// application parked in `wait_reply` still holds its leases, so the
/// window is deterministic instead of sleep-timed. Node 0 meanwhile writes
/// that object under a lock and releases; the diff flush arrives at node 1
/// squarely inside the lease window, is deferred (`Busy`, observable via
/// `busy_responses`), and applies once the lease drops.
///
/// Every corpus seed must (a) defer at least once, (b) produce the
/// threaded reference fingerprint — deferral is a performance event, never
/// a semantic one — and (c) replay a bit-identical delivery trace.
#[test]
fn matrix_busy_deferral_is_deterministic_and_conforms_across_seeds() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Remote objects node 1 faults in while holding its read lease: the
    /// lease window spans ~K round trips of virtual time, while node 0's
    /// diff lands after ~3 — deep inside the window under any corpus
    /// perturbation.
    const FILLERS: usize = 16;

    fn fnv(hash: u64, value: u64) -> u64 {
        (hash ^ value).wrapping_mul(0x0000_0100_0000_01b3)
    }

    let run = |fabric: FabricMode, seed: u64| -> (u64, ExecutionReport) {
        let mut registry = ObjectRegistry::new();
        let target: ArrayHandle<u64> = ArrayHandle::register(
            &mut registry,
            "busy.port.target",
            0,
            4,
            NodeId(1),
            HomeAssignment::CreationNode,
        );
        let fillers: Vec<ArrayHandle<u64>> = (0..FILLERS)
            .map(|k| {
                ArrayHandle::register(
                    &mut registry,
                    "busy.port.filler",
                    k as u64,
                    1,
                    NodeId::MASTER,
                    HomeAssignment::CreationNode,
                )
            })
            .collect();
        let lock = LockId::derive("busy.port.lock");
        let gate = BarrierId(0x60);
        let done = BarrierId(0x61);
        let fingerprint = Arc::new(AtomicU64::new(0));
        let result = Arc::clone(&fingerprint);

        let config = Cluster::builder()
            .nodes(2)
            .protocol(ProtocolConfig::no_migration())
            .compute(ComputeModel::free())
            .seed(seed)
            .fabric(fabric)
            .config();
        let report = Cluster::new(config, registry).run(move |ctx| {
            if ctx.is_master() {
                // Seed the fillers in place (home writes, no traffic), then
                // write the remote-homed target under the lock: the release
                // flushes the diff straight into node 1's live read lease.
                for (k, filler) in fillers.iter().enumerate() {
                    ctx.view_mut(filler)[0] = (k * k + 1) as u64;
                }
                ctx.barrier(gate);
                ctx.synchronized(lock, || {
                    ctx.view_mut(&target)[0] = 41;
                });
                ctx.barrier(done);
            } else {
                ctx.barrier(gate);
                let mut hash = 0xcbf2_9ce4_8422_2325u64;
                {
                    // The lease window: held across FILLERS remote
                    // fault-ins, each of which parks this application with
                    // the lease still live.
                    let held = ctx.view(&target);
                    assert_eq!(held[0], 0, "the diff must not land mid-lease");
                    for filler in &fillers {
                        hash = fnv(hash, ctx.view(filler)[0]);
                    }
                }
                ctx.barrier(done);
                // The deferred diff applied once the lease dropped; node
                // 0's release (and thus the `done` barrier) waited for it.
                let settled = ctx.view(&target)[0];
                assert_eq!(settled, 41, "the deferred diff was lost");
                result.store(fnv(hash, settled), Ordering::SeqCst);
            }
        });
        (fingerprint.load(Ordering::SeqCst), report)
    };

    let (reference, _) = run(FabricMode::Threaded, seed_pair().0);
    assert_ne!(reference, 0, "node 1 never published a fingerprint");
    for seed in dsm_integration_tests::seed_corpus() {
        let (fp, report) = run(FabricMode::Sim(SimConfig::perturbed(seed)), seed);
        assert_eq!(
            fp, reference,
            "seed {seed:#x}: Busy deferral changed the application result on sim"
        );
        assert!(
            report.protocol.busy_responses >= 1,
            "seed {seed:#x}: the diff never found the lease live \
             (busy_responses = {})",
            report.protocol.busy_responses
        );
        let (replay_fp, replay) = run(FabricMode::Sim(SimConfig::perturbed(seed)), seed);
        assert_eq!(replay_fp, fp);
        assert_eq!(
            report.delivery_trace, replay.delivery_trace,
            "seed {seed:#x}: the deferral schedule did not replay bit-identically"
        );
    }
}

/// Single home per epoch, checked in-run under maximum migration churn:
/// rotating writers under JUMP migrate the watched objects continuously,
/// and at every verification point exactly one node considers itself the
/// home of each object.
#[test]
fn matrix_single_home_per_epoch_under_churn() {
    const OBJECTS: usize = 3;
    const ROUNDS: usize = 8;
    let nodes = 4;
    for seed in [seed_pair().0, seed_pair().1] {
        let mut registry = ObjectRegistry::new();
        let handles: Vec<ArrayHandle<u64>> = (0..OBJECTS)
            .map(|i| {
                ArrayHandle::register(
                    &mut registry,
                    "matrix.home",
                    i as u64,
                    nodes,
                    NodeId::MASTER,
                    HomeAssignment::RoundRobin,
                )
            })
            .collect();
        let home_bits: Vec<ArrayHandle<u64>> = (0..OBJECTS)
            .map(|i| {
                ArrayHandle::register(
                    &mut registry,
                    "matrix.homebits",
                    i as u64,
                    nodes,
                    NodeId::MASTER,
                    HomeAssignment::Master,
                )
            })
            .collect();
        let lock = LockId::derive("matrix.home.lock");
        let check = BarrierId(0x51);
        let protocol =
            ProtocolConfig::no_migration().with_migration(MigrationPolicy::MigrateOnRequest);
        let config = sim_test_cluster(nodes, protocol, SimConfig::perturbed(seed));
        Cluster::new(config, registry).run(move |ctx| {
            let me = ctx.node_id().index();
            for round in 0..ROUNDS {
                let obj = (round + me) % OBJECTS;
                ctx.synchronized(lock, || {
                    ctx.view_mut(&handles[obj])[me] += 1;
                });
                ctx.barrier(check);
                // Publish this node's is-home observation for every object,
                // then verify the cluster-wide sum is exactly one. No
                // traffic touches the watched objects between the two
                // barriers, so the homes cannot move mid-check.
                for (i, handle) in handles.iter().enumerate() {
                    let is_home = u64::from(ctx.is_home(handle));
                    ctx.synchronized(lock, || {
                        ctx.view_mut(&home_bits[i])[me] = is_home;
                    });
                }
                ctx.barrier(check);
                for (i, bits) in home_bits.iter().enumerate() {
                    let view = ctx.view(bits);
                    let homes: u64 = view.iter().sum();
                    assert_eq!(
                        homes, 1,
                        "seed {seed:#x}, round {round}: object {i} has {homes} homes \
                         (want exactly one)"
                    );
                }
                ctx.barrier(check);
            }
        });
    }
}
