//! Property-style invariant tests for concurrent home migration.
//!
//! These drive the protocol engines at the message level (no threads) with
//! randomized, seed-replayable op sequences, and — unlike the sequential
//! suites — deliberately model the *migration-grant window*: the interval
//! between the old home granting a migration and the new home installing
//! it, during which other nodes' requests race the in-flight grant. Every
//! interleaving decision comes from a `dsm-util` `SmallRng` stream, so a
//! failing case is shrunk by replaying its printed seed and case index.
//!
//! Invariants checked after every step:
//!
//! * **at-most-one home** per object at every instant, and **exactly one**
//!   whenever no grant is in flight for it;
//! * **home-epoch monotonicity**: no node's believed epoch for an object
//!   ever decreases, and each installed grant carries a strictly larger
//!   epoch than the previous one;
//! * **last write wins**: after every completed interval the (unique) home
//!   copy holds the last value committed to the object.

use dsm_core::{
    AccessPlan, DiffOutcome, MigrationGrant, ObjectRequestOutcome, ProtocolConfig, ProtocolEngine,
};
use dsm_objspace::{HomeAssignment, NodeId, ObjectId, ObjectRegistry};
use dsm_util::SmallRng;
use std::collections::HashMap;
use std::sync::Arc;

const NODES: usize = 4;
const OBJECTS: usize = 6;
const OBJ_BYTES: usize = 64;

fn registry() -> Arc<ObjectRegistry> {
    let mut r = ObjectRegistry::new();
    for i in 0..OBJECTS {
        r.register_named(
            "props.obj",
            i as u64,
            OBJ_BYTES,
            NodeId::MASTER,
            HomeAssignment::RoundRobin,
        );
    }
    Arc::new(r)
}

fn object(i: usize) -> ObjectId {
    ObjectId::derive("props.obj", i as u64)
}

fn engines(config: ProtocolConfig) -> Vec<ProtocolEngine> {
    let reg = registry();
    (0..NODES)
        .map(|i| ProtocolEngine::new(NodeId::from(i), NODES, config.clone(), Arc::clone(&reg)))
        .collect()
}

/// The cluster under test plus the invariant-tracking state.
struct Harness {
    engines: Vec<ProtocolEngine>,
    /// A migration grant that has left the old home but is not yet
    /// installed at its grantee: (grantee, payload, version, grant).
    in_flight: HashMap<ObjectId, (usize, Vec<u8>, dsm_objspace::Version, MigrationGrant)>,
    /// Highest epoch ever installed per object (strict growth check).
    last_installed_epoch: HashMap<ObjectId, u32>,
    /// Last value committed per object (last-write-wins check).
    committed: HashMap<ObjectId, u8>,
    /// Previous believed epoch per (node, object) (monotonicity check).
    believed: Vec<HashMap<ObjectId, u32>>,
    label: String,
}

impl Harness {
    fn new(config: ProtocolConfig, label: String) -> Self {
        Harness {
            engines: engines(config),
            in_flight: HashMap::new(),
            last_installed_epoch: HashMap::new(),
            committed: HashMap::new(),
            believed: (0..NODES).map(|_| HashMap::new()).collect(),
            label,
        }
    }

    /// Install a pending grant at its grantee (the racing "other thread"
    /// finishing its fault-in).
    fn install_in_flight(&mut self, obj: ObjectId) {
        if let Some((grantee, data, version, grant)) = self.in_flight.remove(&obj) {
            let epoch = grant.epoch();
            let previous = self.last_installed_epoch.get(&obj).copied().unwrap_or(0);
            assert!(
                epoch > previous,
                "{}: installed epoch {epoch} not above previous {previous} for {obj}",
                self.label
            );
            self.last_installed_epoch.insert(obj, epoch);
            self.engines[grantee].install_object(obj, data, version, Some(grant));
        }
    }

    /// Route one fault-in of `obj` by `node`, following redirects. When the
    /// chase lands on a node holding an in-flight grant, the grant installs
    /// first (real time passing for the racing requester). Returns whether
    /// a migration was granted to `node`.
    fn fault_in(&mut self, node: usize, obj: ObjectId, for_write: bool) -> bool {
        let mut target = self.engines[node].home_hint(obj);
        let mut hops = 0u32;
        loop {
            if target.index() == node {
                // Our own belief points at ourselves but we are not home:
                // only possible while our grant is still in flight.
                self.install_in_flight(obj);
                assert!(
                    self.engines[node].is_home(obj),
                    "{}: self-belief without home or in-flight grant for {obj}",
                    self.label
                );
                return false;
            }
            // A requester chasing a pointer onto a node whose grant is
            // still in flight: let the grantee finish installing, exactly
            // like the racing server thread would.
            if self
                .in_flight
                .get(&obj)
                .is_some_and(|(grantee, ..)| *grantee == target.index())
            {
                self.install_in_flight(obj);
            }
            let requester = NodeId::from(node);
            match self.engines[target.index()]
                .handle_object_request(obj, requester, for_write, hops)
            {
                ObjectRequestOutcome::Reply {
                    data,
                    version,
                    migration: Some(grant),
                    ..
                } => {
                    // Old home gave the home up; the grant is in flight
                    // until the harness decides to install it.
                    self.in_flight.insert(obj, (node, data, version, grant));
                    return true;
                }
                ObjectRequestOutcome::Reply {
                    data,
                    version,
                    migration: None,
                    ..
                } => {
                    self.engines[node].install_object(obj, data, version, None);
                    return false;
                }
                ObjectRequestOutcome::Redirect { hint, epoch } => {
                    self.engines[node].note_redirect(obj, hint, epoch);
                    hops += 1;
                    assert!(
                        hops <= (NODES as u32) * 2 + 4,
                        "{}: redirect chain for {obj} did not converge",
                        self.label
                    );
                    target = if hint.index() == node {
                        self.engines[node].home_hint(obj)
                    } else {
                        hint
                    };
                }
                other => panic!("{}: unexpected outcome {other:?}", self.label),
            }
        }
    }

    /// One full write interval of `node` on `obj`, with the grant window
    /// interleaving decided by `rng`.
    fn write_interval(&mut self, node: usize, obj: ObjectId, value: u8, rng: &mut SmallRng) {
        self.engines[node].begin_interval();
        if let AccessPlan::Fetch { .. } = self.engines[node].plan_write(obj) {
            let migrated = self.fault_in(node, obj, true);
            if migrated {
                // The racy window: with probability 1/2 let other nodes
                // poke the object *before* the grant installs.
                if rng.gen_index(2) == 0 {
                    let reader = rng.gen_index(NODES);
                    if reader != node {
                        self.engines[reader].begin_interval();
                        if let AccessPlan::Fetch { .. } = self.engines[reader].plan_read(obj) {
                            self.fault_in(reader, obj, false);
                        }
                        self.engines[reader].finish_release();
                    }
                }
                self.install_in_flight(obj);
            }
            assert_eq!(
                self.engines[node].plan_write(obj),
                AccessPlan::LocalHit,
                "{}: copy present after fault-in",
                self.label
            );
        }
        self.engines[node].with_object_mut(obj, |d| d.bytes_mut()[0] = value);
        let plans = self.engines[node].prepare_release();
        for plan in plans {
            let mut target = plan.target;
            let mut hops = 0u32;
            loop {
                if self
                    .in_flight
                    .get(&plan.obj)
                    .is_some_and(|(grantee, ..)| *grantee == target.index())
                {
                    self.install_in_flight(plan.obj);
                }
                let from = self.engines[node].node();
                match self.engines[target.index()].handle_diff(plan.obj, &plan.diff, from, hops) {
                    DiffOutcome::Applied { new_version } => {
                        self.engines[node].complete_flush(plan.obj, new_version);
                        break;
                    }
                    DiffOutcome::Redirect { hint, epoch } => {
                        self.engines[node].note_redirect(plan.obj, hint, epoch);
                        hops += 1;
                        assert!(
                            hops <= (NODES as u32) * 2 + 4,
                            "{}: diff redirect chain for {} did not converge",
                            self.label,
                            plan.obj
                        );
                        target = if hint.index() == node {
                            self.engines[node].home_hint(plan.obj)
                        } else {
                            hint
                        };
                    }
                    DiffOutcome::Busy => {
                        unreachable!("{}: no views live in message-level test", self.label)
                    }
                }
            }
        }
        self.engines[node].finish_release();
        self.committed.insert(obj, value);
    }

    /// Check every invariant over the whole cluster.
    fn check_invariants(&mut self) {
        for i in 0..OBJECTS {
            let obj = object(i);
            let homes = self.engines.iter().filter(|e| e.is_home(obj)).count();
            if self.in_flight.contains_key(&obj) {
                assert_eq!(
                    homes, 0,
                    "{}: {obj} has {homes} homes while its grant is in flight",
                    self.label
                );
            } else {
                assert_eq!(homes, 1, "{}: {obj} must have exactly one home", self.label);
                // Last write wins at the unique home.
                if let Some(&value) = self.committed.get(&obj) {
                    let bytes = self
                        .engines
                        .iter()
                        .find_map(|e| e.home_bytes(obj))
                        .expect("home exists");
                    assert_eq!(
                        bytes[0], value,
                        "{}: home copy of {obj} lost the last committed write",
                        self.label
                    );
                }
            }
            // Believed epochs never regress, on any node.
            for (n, engine) in self.engines.iter().enumerate() {
                let epoch = engine.home_epoch(obj);
                let previous = self.believed[n].get(&obj).copied().unwrap_or(0);
                assert!(
                    epoch >= previous,
                    "{}: node {n} epoch for {obj} regressed {previous} -> {epoch}",
                    self.label
                );
                self.believed[n].insert(obj, epoch);
            }
        }
    }
}

/// Run `cases` random schedules under `config`, checking the invariants
/// after every interval.
fn run_property(config_of: impl Fn(&mut SmallRng) -> ProtocolConfig, seed: u64, cases: usize) {
    let mut rng = SmallRng::seed_from_u64(seed);
    for case in 0..cases {
        let config = config_of(&mut rng);
        let label = format!("seed {seed:#x} case {case} ({})", config.migration.label());
        let mut harness = Harness::new(config, label);
        let steps = 20 + rng.gen_index(40);
        for step in 0..steps {
            let node = rng.gen_index(NODES);
            let obj = object(rng.gen_index(OBJECTS));
            let value = (step % 250) as u8 + 1;
            harness.write_interval(node, obj, value, &mut rng);
            harness.check_invariants();
        }
        // Drain any grant still in flight and re-check the quiescent state.
        for i in 0..OBJECTS {
            harness.install_in_flight(object(i));
        }
        harness.in_flight.clear();
        harness.check_invariants();
    }
}

#[test]
fn prop_epoch_monotone_and_single_home_adaptive() {
    run_property(|_| ProtocolConfig::adaptive(), 0xAD_A917, 24);
}

#[test]
fn prop_epoch_monotone_and_single_home_across_policies() {
    run_property(
        |rng| match rng.gen_index(4) {
            0 => ProtocolConfig::no_migration(),
            1 => ProtocolConfig::fixed_threshold(1),
            2 => ProtocolConfig::fixed_threshold(2),
            _ => ProtocolConfig::adaptive(),
        },
        0x5EED_CAFE,
        24,
    );
}

/// The JUMP baseline migrates on every write fault — the densest possible
/// stream of migration grants and therefore the strongest exercise of the
/// grant-window invariants.
#[test]
fn prop_stress_grant_window_under_jump_migration() {
    use dsm_core::MigrationPolicy;
    run_property(
        |_| ProtocolConfig::no_migration().with_migration(MigrationPolicy::MigrateOnRequest),
        0x1AB5_2024,
        16,
    );
}
