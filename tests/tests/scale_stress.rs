//! 256-node scale soak on the threaded fabric.
//!
//! The event-driven executor exists to lift the threaded fabric past the
//! one-server-thread-per-node ceiling; this suite actually runs a cluster
//! at that scale. Every node repeatedly locks, faults in and increments a
//! rotating remote-homed counter, so each round drives cross-node lock
//! traffic, fault-ins and diff flushes through all 256 protocol servers
//! multiplexed onto the bounded worker pool — then the final state is
//! read back and folded into a fingerprint that must match both the
//! closed-form expectation and the per-node-thread (polling) mode on the
//! same seed.
//!
//! The debug-friendly soak below runs on every `cargo test`; the seeded
//! release-mode soak (more rounds, every corpus seed, executor *and*
//! polling) is `#[ignore]`d and run by the `scale-stress` CI job with
//! `--include-ignored`. On failure the offending seed is appended to
//! `SCALE_STRESS_FAILURES.txt` (override with `DSM_SCALE_FAILURES`), which
//! CI uploads as an artifact exactly like the sim-matrix failing-seed
//! list.

use dsm_core::ProtocolConfig;
use dsm_integration_tests::{seed_corpus, test_cluster};
use dsm_objspace::{BarrierId, HomeAssignment, LockId, NodeId, ObjectRegistry};
use dsm_runtime::{ArrayHandle, Cluster, ExecutionReport, ServerMode};
use std::io::Write;

/// Cluster size of the soak. The executor multiplexes all 256 protocol
/// servers onto `min(available_parallelism, 256)` pool workers; only the
/// polling comparison run pays one server thread per node.
const NODES: usize = 256;

/// FNV-1a step, the same fold the matrix fingerprints use.
fn fnv(hash: u64, value: u64) -> u64 {
    (hash ^ value).wrapping_mul(0x0000_0100_0000_01b3)
}

/// One soak run: `rounds` rotating lock/fault-in/increment rounds over
/// `NODES` nodes and counters, then a full read-back on the master.
///
/// Counter `c` is homed on node `c % NODES` (round-robin registration
/// order); in round `r`, node `m` increments counter `(m + r) % NODES` by
/// `m + 1` under that counter's lock — every counter gets exactly one
/// writer per round, and after `rounds` rounds holds a closed-form value
/// the read-back verifies before fingerprinting.
fn soak(mode: ServerMode, seed: u64, rounds: usize) -> (u64, ExecutionReport) {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    let mut registry = ObjectRegistry::new();
    let counters: Vec<ArrayHandle<u64>> = (0..NODES)
        .map(|c| {
            ArrayHandle::register(
                &mut registry,
                "scale.cnt",
                c as u64,
                1,
                NodeId::MASTER,
                HomeAssignment::RoundRobin,
            )
        })
        .collect();
    let locks: Vec<LockId> = (0..NODES)
        .map(|c| LockId::derive(&format!("scale.lock.{c}")))
        .collect();
    let gate = BarrierId(0x5C);
    let fingerprint = Arc::new(AtomicU64::new(0));
    let result = Arc::clone(&fingerprint);

    let config = test_cluster(NODES, ProtocolConfig::no_migration())
        .with_seed(seed)
        .with_server_mode(mode);
    let report = Cluster::new(config, registry).run(move |ctx| {
        let me = ctx.node_id().index();
        for round in 0..rounds {
            let c = (me + round) % NODES;
            ctx.synchronized(locks[c], || {
                ctx.view_mut(&counters[c])[0] += me as u64 + 1;
            });
            ctx.barrier(gate);
        }
        if ctx.is_master() {
            // Read back all 256 counters (255 remote fault-ins), verify the
            // closed form and fold the values into the run fingerprint.
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for (c, counter) in counters.iter().enumerate() {
                let value = ctx.view(counter)[0];
                let expect: u64 = (0..rounds)
                    .map(|r| ((c + NODES - r % NODES) % NODES) as u64 + 1)
                    .sum();
                assert_eq!(
                    value, expect,
                    "seed {seed:#x}: counter {c} ended at {value}, expected {expect}"
                );
                hash = fnv(hash, value);
            }
            result.store(hash, Ordering::SeqCst);
        }
        ctx.barrier(gate);
    });
    (
        fingerprint.load(std::sync::atomic::Ordering::SeqCst),
        report,
    )
}

/// Append a failing seed to the artifact file the `scale-stress` CI job
/// uploads, then return the message for the panic.
fn record_failure(seed: u64, message: String) -> String {
    let path = std::env::var("DSM_SCALE_FAILURES")
        .unwrap_or_else(|_| "SCALE_STRESS_FAILURES.txt".to_string());
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = writeln!(file, "{seed:#x}: {message}");
    }
    message
}

/// The every-`cargo test` soak: one seed, few rounds, executor mode. The
/// run completing at all proves 256 nodes' servers multiplex onto the
/// bounded pool without deadlock; the in-run closed-form check proves they
/// computed the right thing.
#[test]
fn stress_256_nodes_complete_a_soak_under_the_executor() {
    let seed = seed_corpus()[0];
    let (fingerprint, report) = soak(ServerMode::Executor, seed, 2);
    assert_ne!(fingerprint, 0, "the master never published a fingerprint");
    assert_eq!(report.num_nodes, NODES);
    let sched = report.scheduler.expect("threaded runs report scheduling");
    assert_eq!(sched.mode, "executor");
    assert!(
        sched.workers <= NODES,
        "the pool must stay bounded ({} workers)",
        sched.workers
    );
    assert!(sched.runnable_high_watermark <= NODES);
    assert!(sched.steps > 0);
}

/// The seeded release-mode soak the `scale-stress` CI job runs: every
/// corpus seed, more rounds, and the executor's fingerprint must equal
/// the per-node-thread polling mode's on the same seed.
#[test]
#[ignore = "release-mode 256-node soak; run via `cargo test --release -- --include-ignored scale`"]
fn stress_256_nodes_executor_matches_polling_across_the_corpus() {
    for seed in seed_corpus() {
        let rounds = 4;
        let (exec_fp, exec_report) = soak(ServerMode::Executor, seed, rounds);
        let (poll_fp, _) = soak(ServerMode::Polling, seed, rounds);
        if exec_fp != poll_fp {
            panic!(
                "{}",
                record_failure(
                    seed,
                    format!(
                        "executor fingerprint {exec_fp:#018x} != polling {poll_fp:#018x} \
                         at {NODES} nodes"
                    ),
                )
            );
        }
        let sched = exec_report
            .scheduler
            .expect("threaded runs report scheduling");
        if sched.workers >= NODES {
            panic!(
                "{}",
                record_failure(
                    seed,
                    format!(
                        "executor used {} workers for {NODES} nodes — the pool is not \
                         actually multiplexing",
                        sched.workers
                    ),
                )
            );
        }
    }
}
