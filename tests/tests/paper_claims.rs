//! Integration tests that check the paper's headline claims end to end,
//! across every crate of the workspace: the adaptive protocol is *sensitive*
//! to the lasting single-writer pattern (it migrates early and eliminates
//! remote accesses) and *robust* against the transient single-writer pattern
//! (it suppresses migration and its redirection overhead).

use dsm_apps::synthetic::{self, SyntheticParams};
use dsm_apps::{asp, sor};
use dsm_core::ProtocolConfig;
use dsm_integration_tests::test_cluster;
use dsm_net::MsgCategory;

/// §5.1: "home migration improves the performance of ASP and SOR a lot"
/// because the round-robin initial homes are not the writing nodes.
#[test]
fn claim_asp_and_sor_benefit_from_home_migration() {
    let asp_params = asp::AspParams::small(40);
    let at = asp::run(test_cluster(4, ProtocolConfig::adaptive()), &asp_params);
    let nohm = asp::run(test_cluster(4, ProtocolConfig::no_migration()), &asp_params);
    assert_eq!(asp::checksum(&at.result), asp::checksum(&nohm.result));
    assert!(at.report.execution_time < nohm.report.execution_time);
    assert!(at.report.breakdown_messages() < nohm.report.breakdown_messages());
    assert!(at.report.total_traffic_bytes() < nohm.report.total_traffic_bytes());

    let sor_params = sor::SorParams::small(40, 4);
    let at = sor::run(test_cluster(4, ProtocolConfig::adaptive()), &sor_params);
    let nohm = sor::run(test_cluster(4, ProtocolConfig::no_migration()), &sor_params);
    assert_eq!(sor::checksum(&at.result), sor::checksum(&nohm.result));
    assert!(at.report.execution_time < nohm.report.execution_time);
    assert!(at.report.breakdown_messages() < nohm.report.breakdown_messages());
}

/// §5.1 / Figure 3: the adaptive threshold is at least as good as the fixed
/// threshold 2 of the authors' earlier work, because FT2 postpones the
/// initial data relocation.
#[test]
fn claim_adaptive_threshold_beats_fixed_threshold_two() {
    let params = asp::AspParams::small(40);
    let at = asp::run(test_cluster(4, ProtocolConfig::adaptive()), &params);
    let ft2 = asp::run(test_cluster(4, ProtocolConfig::fixed_threshold(2)), &params);
    assert_eq!(asp::checksum(&at.result), asp::checksum(&ft2.result));
    assert!(
        at.report.breakdown_messages() <= ft2.report.breakdown_messages(),
        "AT must not send more coherence messages than FT2 ({} vs {})",
        at.report.breakdown_messages(),
        ft2.report.breakdown_messages()
    );
    assert!(at.report.execution_time <= ft2.report.execution_time);
}

/// §5.2 observation 1: with a large repetition of the single-writer pattern
/// the benefit from home migration is obvious — most object fault-ins and
/// diff propagations are eliminated.
#[test]
fn claim_lasting_single_writer_pattern_is_exploited() {
    let repetition = 16;
    let params = SyntheticParams {
        repetition,
        total_updates: (repetition * 4 * 8) as u64,
        compute_ops: 0,
    };
    let at = synthetic::run(test_cluster(5, ProtocolConfig::adaptive()), &params);
    let nm = synthetic::run(test_cluster(5, ProtocolConfig::no_migration()), &params);
    let at_pairs = at.report.messages(MsgCategory::ObjReply)
        + at.report.messages(MsgCategory::ObjReplyMigrate)
        + at.report.messages(MsgCategory::Diff);
    let nm_pairs =
        nm.report.messages(MsgCategory::ObjReply) + nm.report.messages(MsgCategory::Diff);
    assert!(at.report.migrations() > 0);
    assert!(
        (at_pairs as f64) < 0.55 * nm_pairs as f64,
        "with r=16 the adaptive protocol should eliminate roughly half or more of the \
         fault-in/diff messages (AT {at_pairs} vs NM {nm_pairs})"
    );
}

/// §5.2 observation 4: under the transient single-writer pattern the
/// adaptive protocol is robust — it does not generate more redirection
/// overhead than the eager fixed-threshold protocol, and it migrates less.
#[test]
fn claim_transient_single_writer_pattern_is_suppressed() {
    let repetition = 2;
    let params = SyntheticParams {
        repetition,
        total_updates: (repetition * 4 * 16) as u64,
        compute_ops: 0,
    };
    let at = synthetic::run(test_cluster(5, ProtocolConfig::adaptive()), &params);
    let ft1 = synthetic::run(test_cluster(5, ProtocolConfig::fixed_threshold(1)), &params);
    assert!(
        at.report.messages(MsgCategory::Redirect) <= ft1.report.messages(MsgCategory::Redirect),
        "AT must not redirect more than FT1 under the transient pattern ({} vs {})",
        at.report.messages(MsgCategory::Redirect),
        ft1.report.messages(MsgCategory::Redirect)
    );
    assert!(
        at.report.migrations() <= ft1.report.migrations(),
        "AT must not migrate more than FT1 under the transient pattern ({} vs {})",
        at.report.migrations(),
        ft1.report.migrations()
    );
}

/// §5.2: "FT2 prohibits home migration when the repetition is two" — the
/// fixed threshold of 2 never sees two consecutive remote writes before the
/// writer's next fault when each critical section only writes twice.
#[test]
fn claim_ft2_prohibits_migration_at_repetition_two() {
    let params = SyntheticParams {
        repetition: 2,
        total_updates: 2 * 4 * 10,
        compute_ops: 0,
    };
    let ft2 = synthetic::run(test_cluster(5, ProtocolConfig::fixed_threshold(2)), &params);
    // Within one critical section FT2 never reaches its threshold before the
    // writer's next fault. The only way a migration can still happen is the
    // (rare, scheduling-dependent) case where the same worker wins the lock
    // twice in a row right at start-up — the paper notes consecutive
    // re-acquisition "happens randomly at runtime" — so allow a tiny slack
    // instead of demanding exactly zero.
    assert!(
        ft2.report.migrations() <= 1,
        "FT2 should (almost) never migrate when the single-writer pattern only repeats twice, got {}",
        ft2.report.migrations()
    );
}

/// The protocol is a pure performance optimization: every policy computes
/// identical application results on every workload.
#[test]
fn claim_results_are_policy_independent() {
    let asp_params = asp::AspParams::small(28);
    let reference = asp::sequential(&asp_params);
    for protocol in [
        ProtocolConfig::no_migration(),
        ProtocolConfig::fixed_threshold(1),
        ProtocolConfig::fixed_threshold(2),
        ProtocolConfig::adaptive(),
    ] {
        let run = asp::run(test_cluster(3, protocol), &asp_params);
        assert_eq!(asp::checksum(&run.result), asp::checksum(&reference));
    }
}
