//! Policy-state carry-over across a migration grant.
//!
//! The engine ships the object's [`MigrationState`] — including the
//! policy-owned [`PolicyScratch`] and the `prev_home` marker — to the new
//! home inside the grant. These tests pin the handoff down:
//!
//! * **byte-for-byte transport** — the state the old home ships (after the
//!   policy's `on_migrate` hook) is exactly the state the new home
//!   installs, scratch `f64`s compared bit-for-bit;
//! * **scratch carried verbatim** — a policy using the default `on_migrate`
//!   sees its accumulated scratch at the new home unchanged;
//! * **EWMA's deliberate reset** — its `on_migrate` clears the scratch at
//!   the grant point, and exactly the cleared value arrives;
//! * **hysteresis across the handoff** — `prev_home` survives, so
//!   migrating *back* costs `threshold + penalty` consecutive writes at
//!   the new home;
//! * **both fabrics** — a cluster run on the threaded and on the sim
//!   fabric ends with bit-identical policy state at the migrated home.

use dsm_core::policy::{Decision, HomeMigrationPolicy, PolicyInputs};
use dsm_core::{
    AccessPlan, DiffOutcome, EwmaWriteRatioPolicy, HysteresisPolicy, MigrationState,
    ObjectRequestOutcome, ProtocolConfig, ProtocolEngine,
};
use dsm_integration_tests::{corpus_seed, sim_test_cluster, test_cluster};
use dsm_objspace::{BarrierId, HomeAssignment, LockId, NodeId, ObjectRegistry};
use dsm_runtime::{ArrayHandle, Cluster, ClusterConfig};
use dsm_util::Mutex;
use std::sync::Arc;

const NODES: usize = 3;
const OBJ_BYTES: usize = 64;

/// A probe policy: migrates like FT1 but stamps both scratch fields on
/// every remote write and keeps the default `on_migrate` (scratch travels
/// untouched) — so the tests can verify the *engine's* carry-over with a
/// scratch the built-in policies would not produce.
#[derive(Debug)]
struct ScratchStampPolicy;

impl HomeMigrationPolicy for ScratchStampPolicy {
    fn label(&self) -> &str {
        "STAMP"
    }

    fn decide(&self, inputs: &PolicyInputs<'_>) -> Decision {
        if inputs.state.last_remote_writer == Some(inputs.requester)
            && inputs.state.consecutive_remote_writes >= 1
        {
            Decision::Migrate
        } else {
            Decision::Stay
        }
    }

    fn current_threshold(&self, _inputs: &PolicyInputs<'_>) -> f64 {
        1.0
    }

    fn on_remote_write(&self, state: &mut MigrationState, from: NodeId, diff_bytes: u64) {
        // Values with plenty of mantissa bits, so a carry-over that decodes
        // or re-derives the scratch (instead of copying it) would be caught.
        state.scratch.a += diff_bytes as f64 * 0.333_333_333_333_3;
        state.scratch.b = state.scratch.b * 0.5 + f64::from(from.0) + 0.062_5;
    }
}

fn registry() -> Arc<ObjectRegistry> {
    let mut r = ObjectRegistry::new();
    r.register_named(
        "carry.obj",
        0,
        OBJ_BYTES,
        NodeId::MASTER,
        HomeAssignment::Master,
    );
    Arc::new(r)
}

fn obj() -> dsm_objspace::ObjectId {
    dsm_objspace::ObjectId::derive("carry.obj", 0)
}

fn engines(config: ProtocolConfig) -> Vec<ProtocolEngine> {
    let reg = registry();
    (0..NODES)
        .map(|i| ProtocolEngine::new(NodeId::from(i), NODES, config.clone(), Arc::clone(&reg)))
        .collect()
}

/// Open an interval at `writer` and fault the object in for writing
/// (chasing redirects). Returns the migration grant state if this fault-in
/// migrated the home to the writer; the caller continues with
/// [`write_and_release`] — the split exists so tests can inspect the
/// freshly installed state *before* the writer's own write mutates it.
fn fault_for_write(engines: &[ProtocolEngine], writer: usize) -> Option<MigrationState> {
    let id = obj();
    engines[writer].begin_interval();
    let mut granted = None;
    if let AccessPlan::Fetch { mut target } = engines[writer].plan_write(id) {
        let mut hops = 0;
        loop {
            match engines[target.index()].handle_object_request(
                id,
                NodeId::from(writer),
                true,
                hops,
            ) {
                ObjectRequestOutcome::Reply {
                    data,
                    version,
                    migration,
                    ..
                } => {
                    granted = migration.as_ref().map(|g| g.state.clone());
                    engines[writer].install_object(id, data, version, migration);
                    break;
                }
                ObjectRequestOutcome::Redirect { hint, epoch } => {
                    engines[writer].note_redirect(id, hint, epoch);
                    hops += 1;
                    assert!(hops <= NODES as u32 + 2, "redirect chain diverged");
                    target = hint;
                }
                other => panic!("single-threaded request cannot defer: {other:?}"),
            }
        }
    }
    granted
}

/// Write one byte and release the interval opened by [`fault_for_write`].
fn write_and_release(engines: &[ProtocolEngine], writer: usize, value: u8) {
    let id = obj();
    // (Re-)plan now that the copy is present: arms the write permission
    // (and the twin, when the copy is cached rather than homed).
    assert_eq!(engines[writer].plan_write(id), AccessPlan::LocalHit);
    engines[writer].with_object_mut(id, |d| d.bytes_mut()[0] = value);
    for plan in engines[writer].prepare_release() {
        let mut target = plan.target;
        let mut hops = 0;
        loop {
            match engines[target.index()].handle_diff(
                plan.obj,
                &plan.diff,
                NodeId::from(writer),
                hops,
            ) {
                DiffOutcome::Applied { new_version } => {
                    engines[writer].complete_flush(plan.obj, new_version);
                    break;
                }
                DiffOutcome::Redirect { hint, epoch } => {
                    engines[writer].note_redirect(plan.obj, hint, epoch);
                    hops += 1;
                    assert!(hops <= NODES as u32 + 2, "diff redirect chain diverged");
                    target = hint;
                }
                other => panic!("single-threaded diff cannot defer: {other:?}"),
            }
        }
    }
    engines[writer].finish_release();
}

/// One complete write interval of `writer`. Returns the migration grant
/// state if the fault-in migrated the home to the writer.
fn write_interval(engines: &[ProtocolEngine], writer: usize, value: u8) -> Option<MigrationState> {
    let granted = fault_for_write(engines, writer);
    write_and_release(engines, writer, value);
    granted
}

/// Bit-exact equality of two states, including the scratch `f64`s (plain
/// `==` would already fail on any difference, but NaN-safe bit comparison
/// states the intent: the handoff must *copy*, not recompute).
fn assert_state_bits_equal(shipped: &MigrationState, installed: &MigrationState, context: &str) {
    assert_eq!(shipped, installed, "{context}: state diverged");
    assert_eq!(
        shipped.scratch.a.to_bits(),
        installed.scratch.a.to_bits(),
        "{context}: scratch.a bits diverged"
    );
    assert_eq!(
        shipped.scratch.b.to_bits(),
        installed.scratch.b.to_bits(),
        "{context}: scratch.b bits diverged"
    );
    assert_eq!(
        shipped.prev_home, installed.prev_home,
        "{context}: prev_home"
    );
}

#[test]
fn grant_carries_scratch_and_prev_home_byte_for_byte() {
    let config = ProtocolConfig::no_migration()
        .with_migration(Arc::new(ScratchStampPolicy) as Arc<dyn HomeMigrationPolicy>);
    let e = engines(config);
    // Interval 1: remote write from node 1 stamps the scratch (C = 1).
    assert!(write_interval(&e, 1, 1).is_none(), "no migration yet");
    let before = e[0].migration_state(obj()).expect("node 0 is home");
    assert!(before.scratch.a != 0.0 && before.scratch.b != 0.0);
    assert_eq!(before.prev_home, None);
    // Interval 2: node 1 faults again — FT1-style decision migrates, and
    // the grant must ship the stamped scratch untouched plus the old home.
    let shipped = fault_for_write(&e, 1).expect("second fault migrates");
    assert_eq!(
        shipped.scratch.a.to_bits(),
        before.scratch.a.to_bits(),
        "default on_migrate must carry the scratch verbatim"
    );
    assert_eq!(shipped.scratch.b.to_bits(), before.scratch.b.to_bits());
    assert_eq!(shipped.prev_home, Some(NodeId(0)));
    assert_eq!(shipped.migrations, before.migrations + 1);
    // The new home installed exactly what was shipped (inspected before the
    // writer's own — now home-local — write mutates the bookkeeping).
    let installed = e[1].migration_state(obj()).expect("node 1 is now home");
    assert_state_bits_equal(&shipped, &installed, "stamp policy handoff");
    assert!(e[1].is_home(obj()) && !e[0].is_home(obj()));
    write_and_release(&e, 1, 2);
}

#[test]
fn ewma_reset_on_migrate_arrives_exactly() {
    let config = ProtocolConfig::no_migration().with_migration(EwmaWriteRatioPolicy::default());
    let e = engines(config);
    // Three unbroken remote writes push the share to 0.875 ≥ 0.8.
    for i in 0..3 {
        assert!(write_interval(&e, 1, i + 1).is_none());
    }
    let before = e[0].migration_state(obj()).expect("node 0 is home");
    assert!(
        EwmaWriteRatioPolicy::share(&before) >= 0.8,
        "share {} must have armed migration",
        EwmaWriteRatioPolicy::share(&before)
    );
    // The next fault migrates; EWMA's on_migrate clears the scratch at the
    // grant point, and exactly the cleared state must arrive.
    let shipped = fault_for_write(&e, 1).expect("armed fault migrates");
    assert_eq!(
        shipped.scratch.a.to_bits(),
        0f64.to_bits(),
        "EWMA resets its share for the new epoch"
    );
    assert_eq!(shipped.prev_home, Some(NodeId(0)));
    let installed = e[1].migration_state(obj()).expect("node 1 is now home");
    assert_state_bits_equal(&shipped, &installed, "EWMA handoff");
    write_and_release(&e, 1, 9);
    // Diff-size history survives the reset (engine-owned, not scratch).
    assert_eq!(installed.diff_samples, before.diff_samples);
    assert_eq!(
        installed.mean_diff_bytes.to_bits(),
        before.mean_diff_bytes.to_bits()
    );
}

#[test]
fn hysteresis_prev_home_survives_and_penalizes_migrate_back() {
    let config = ProtocolConfig::no_migration().with_migration(HysteresisPolicy::new(1, 2));
    let e = engines(config);
    // Node 1 takes the home with one remote write + fault.
    assert!(write_interval(&e, 1, 1).is_none());
    let shipped = fault_for_write(&e, 1).expect("threshold 1 migrates");
    assert_eq!(shipped.prev_home, Some(NodeId(0)));
    let installed = e[1].migration_state(obj()).expect("node 1 is home");
    assert_state_bits_equal(&shipped, &installed, "hysteresis handoff");
    write_and_release(&e, 1, 2);
    // Node 0 now writes remotely: migrating *back* to the previous home
    // needs threshold + penalty = 3 consecutive writes, so the first two
    // post-write faults must NOT migrate…
    assert!(write_interval(&e, 0, 3).is_none(), "C=1 < 3: stay");
    assert!(write_interval(&e, 0, 4).is_none(), "C=2 < 3: stay");
    assert!(e[1].is_home(obj()), "penalty must hold the home at node 1");
    // …while a third consecutive write arms the migrate-back.
    assert!(
        write_interval(&e, 0, 5).is_none(),
        "C=3 armed, next fault moves"
    );
    let back = write_interval(&e, 0, 6).expect("penalty met: migrate back");
    assert_eq!(back.prev_home, Some(NodeId(1)));
    assert!(e[0].is_home(obj()));
    // A non-previous home still migrates at the base threshold of 1: node 2
    // needs only one recorded write before its next fault.
    assert!(write_interval(&e, 2, 7).is_none(), "C=1 recorded");
    assert!(
        write_interval(&e, 2, 8).is_some(),
        "base threshold applies to a fresh requester"
    );
}

/// The cluster-level handoff, identical on both fabrics: node 1's repeated
/// writes migrate the object under the stamp policy; after a barrier the
/// new home publishes its installed state, and the threaded and sim runs
/// must agree bit-for-bit.
#[test]
fn policy_state_survives_handoff_on_both_fabrics() {
    let run = |config: ClusterConfig| -> (u64, u64, Option<NodeId>, u32) {
        let mut registry = ObjectRegistry::new();
        let handle: ArrayHandle<u64> = ArrayHandle::register(
            &mut registry,
            "carry.cluster",
            0,
            4,
            NodeId::MASTER,
            HomeAssignment::Master,
        );
        let lock = LockId::derive("carry.cluster.lock");
        let done = BarrierId(0xCA11);
        let observed = Arc::new(Mutex::new(None));
        let observed_in_run = Arc::clone(&observed);
        Cluster::new(config, registry).run(move |ctx| {
            if ctx.node_id() == NodeId(1) {
                for i in 0..4u64 {
                    ctx.synchronized(lock, || ctx.view_mut(&handle)[1] = i + 1);
                }
            }
            ctx.barrier(done);
            if ctx.node_id() == NodeId(1) {
                assert!(ctx.is_home(&handle), "home must have migrated to node 1");
                let state = ctx.migration_state(&handle).expect("home has state");
                *observed_in_run.lock() = Some((
                    state.scratch.a.to_bits(),
                    state.scratch.b.to_bits(),
                    state.prev_home,
                    state.migrations,
                ));
            }
            ctx.barrier(done);
        });
        let result = observed.lock().take().expect("node 1 published its state");
        result
    };

    let policy = || {
        ProtocolConfig::no_migration()
            .with_migration(Arc::new(ScratchStampPolicy) as Arc<dyn HomeMigrationPolicy>)
    };
    let threaded = run(test_cluster(4, policy()));
    let sim = run(sim_test_cluster(
        4,
        policy(),
        dsm_runtime::SimConfig::perturbed(corpus_seed(0)),
    ));

    let (a_bits, _b_bits, prev_home, migrations) = threaded;
    assert!(
        f64::from_bits(a_bits) != 0.0,
        "stamped scratch must be live"
    );
    assert_eq!(prev_home, Some(NodeId::MASTER), "previous home recorded");
    assert_eq!(migrations, 1, "exactly one handoff in this pattern");
    assert_eq!(
        threaded,
        sim,
        "the handed-off policy state must be bit-identical on the threaded \
         and sim fabrics (seed {:#x})",
        corpus_seed(0)
    );
}
