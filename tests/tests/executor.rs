//! Integration suite for the event-driven executor: the wake-on-send
//! worker pool that multiplexes every node's protocol server onto a
//! bounded pool (`crates/runtime/src/exec`), replacing the per-node
//! `recv_timeout` polling threads.
//!
//! What is certified here, per the executor's acceptance claims:
//!
//! * **Quiet clusters are silent** — on a cluster that exchanges almost no
//!   messages, the executor performs strictly fewer idle server wakeups
//!   than the polling mode burning one timer tick per node per
//!   `poll_interval` (the headline idle-CPU win, asserted on the new
//!   [`SchedulerReport`] counters).
//! * **Scheduling is semantics-free** — a single-worker (N=1) executor,
//!   which fully serializes all server-side protocol handling, produces
//!   the same workload fingerprints as the per-node-thread polling mode
//!   across the shared seed corpus, on the matrix workloads.
//! * **Teardown wakes parked waiters** — a pool deliberately larger than
//!   the cluster keeps its surplus workers parked on the idle condvar the
//!   whole run; shutdown must wake and retire them (the run completing at
//!   all is the assertion; the parked high-watermark proves they parked).
//! * **Observability** — queue-depth high-watermarks and runnable/parked
//!   counts surface in [`ExecutionReport::scheduler`] on both real
//!   fabrics (threaded and TCP), and stay `None` on the sim fabric, whose
//!   virtual-time scheduler has neither server threads nor inbound
//!   queues.

use dsm_bench::matrix;
use dsm_core::ProtocolConfig;
use dsm_integration_tests::{seed_corpus, sim_test_cluster, tcp_test_cluster, test_cluster};
use dsm_net::TcpConfig;
use dsm_objspace::{BarrierId, HomeAssignment, NodeId, ObjectRegistry};
use dsm_runtime::{
    ArrayHandle, Cluster, ExecutionReport, FabricMode, SchedulerReport, ServerMode, SimConfig,
};
use std::time::Duration;

/// Run a four-node cluster that does one barrier and then sleeps quietly
/// for `quiet`, under the given server mode, and return its report.
fn quiet_run(mode: ServerMode, quiet: Duration) -> ExecutionReport {
    let registry = ObjectRegistry::new();
    let config = test_cluster(4, ProtocolConfig::no_migration()).with_server_mode(mode);
    Cluster::new(config, registry).run(move |ctx| {
        ctx.barrier(BarrierId(1));
        // The quiet phase: no messages flow, so an event-driven server has
        // nothing to wake up for — while a polling server keeps burning one
        // timer wakeup per node per poll interval.
        std::thread::sleep(quiet);
        ctx.barrier(BarrierId(2));
    })
}

fn scheduler(report: &ExecutionReport) -> &SchedulerReport {
    report
        .scheduler
        .as_ref()
        .expect("threaded/tcp runs surface a scheduler report")
}

/// The headline claim: on a quiet cluster the executor performs strictly
/// fewer idle server wakeups than per-node polling threads.
#[test]
fn executor_is_strictly_quieter_than_polling_on_an_idle_cluster() {
    // 100 ms of quiet at the 2 ms default poll interval gives polling
    // ~50 idle ticks per node (~200 total); the executor's idle steps are
    // bounded by its prime pass plus shutdown (a handful per node).
    let quiet = Duration::from_millis(100);
    let executor = quiet_run(ServerMode::Executor, quiet);
    let polling = quiet_run(ServerMode::Polling, quiet);

    let exec = scheduler(&executor);
    let poll = scheduler(&polling);
    assert_eq!(exec.mode, "executor");
    assert_eq!(poll.mode, "polling");
    assert_eq!(poll.workers, 4, "polling runs one server thread per node");
    assert!(
        exec.idle_wakeups < poll.idle_wakeups,
        "the executor must be strictly quieter than polling on an idle cluster \
         (executor {} idle wakeups vs polling {})",
        exec.idle_wakeups,
        poll.idle_wakeups
    );
    // The executor did real, wake-driven work: the barriers produced
    // notifications and handler steps, and every step was accounted.
    assert!(exec.wakeups > 0, "barrier traffic must produce wakeups");
    // (Wakeups may slightly exceed steps: a shutdown-time wake that lands
    // after the pool proved every queue drained is redundant by
    // construction and never stepped.)
    assert!(exec.steps > 0, "the pool stepped the barrier traffic");
    assert!(
        exec.runnable_high_watermark >= 1,
        "at least one node was queued runnable at some point"
    );
    // Polling mode reports no executor-specific counters.
    assert_eq!(poll.steps, 0);
    assert_eq!(poll.wakeups, 0);
    assert_eq!(poll.runnable_high_watermark, 0);
}

/// A single-worker executor fully serializes all server-side handling —
/// and must still produce exactly the fingerprints of the per-node-thread
/// polling mode on the matrix workloads, for every corpus seed.
#[test]
fn single_worker_executor_matches_polling_fingerprints_on_corpus_seeds() {
    let workloads = matrix::workloads();
    for (i, seed) in seed_corpus().into_iter().enumerate() {
        // Rotate through the matrix so an overridden corpus sweeps cells.
        for workload in [&workloads[i % workloads.len()], &workloads[4]] {
            let polling = workload.run(
                matrix::matrix_cluster(ProtocolConfig::adaptive(), FabricMode::Threaded)
                    .with_seed(seed)
                    .with_server_mode(ServerMode::Polling),
            );
            let single = workload.run(
                matrix::matrix_cluster(ProtocolConfig::adaptive(), FabricMode::Threaded)
                    .with_seed(seed)
                    .with_executor_workers(1),
            );
            assert_eq!(
                single.fingerprint, polling.fingerprint,
                "seed {seed:#x}: a single-worker executor changed the {} result",
                workload.name
            );
            assert_eq!(scheduler(&single.report).workers, 1);
        }
    }
}

/// A pool larger than the cluster parks its surplus workers for the whole
/// run; `begin_shutdown` must wake every one of them or the run would hang
/// in `thread::scope` — completing cleanly *is* the teardown assertion.
#[test]
fn teardown_wakes_parked_workers_and_reports_the_parked_high_watermark() {
    let registry = ObjectRegistry::new();
    let config = test_cluster(2, ProtocolConfig::no_migration()).with_executor_workers(8);
    let report = Cluster::new(config, registry).run(|ctx| {
        ctx.barrier(BarrierId(7));
    });
    let sched = scheduler(&report);
    assert_eq!(sched.mode, "executor");
    assert_eq!(sched.workers, 8);
    assert!(
        sched.parked_high_watermark > 0,
        "an 8-worker pool serving 2 nodes must have parked workers \
         (parked high-watermark {})",
        sched.parked_high_watermark
    );
    // Two nodes bound the runnable queue depth.
    assert!(sched.runnable_high_watermark <= 2);
}

/// The channel queue-depth high-watermark surfaces real cross-node traffic
/// in the report: any delivered message makes it at least one.
#[test]
fn queue_depth_high_watermark_surfaces_in_the_report() {
    let mut registry = ObjectRegistry::new();
    let data: ArrayHandle<u64> = ArrayHandle::register(
        &mut registry,
        "exec.depth",
        0,
        4,
        NodeId::MASTER,
        HomeAssignment::Master,
    );
    let config = test_cluster(2, ProtocolConfig::no_migration());
    let report = Cluster::new(config, registry).run(move |ctx| {
        if !ctx.is_master() {
            // A remote fault-in: at least one message crosses a channel.
            assert_eq!(ctx.view(&data)[0], 0);
        }
        ctx.barrier(BarrierId(3));
    });
    assert!(
        scheduler(&report).queue_depth_high_watermark >= 1,
        "a run with cross-node traffic must record a nonzero queue depth"
    );
}

/// The executor also drives the TCP fabric: wake-on-receive from the
/// socket reader threads, same report surface.
#[test]
fn tcp_runs_are_driven_by_the_executor_and_report_scheduling() {
    let mut registry = ObjectRegistry::new();
    let data: ArrayHandle<u64> = ArrayHandle::register(
        &mut registry,
        "exec.tcp",
        0,
        4,
        NodeId::MASTER,
        HomeAssignment::Master,
    );
    let config = tcp_test_cluster(2, ProtocolConfig::no_migration(), TcpConfig::default());
    let report = Cluster::new(config, registry).run(move |ctx| {
        if !ctx.is_master() {
            assert_eq!(ctx.view(&data)[0], 0);
        }
        ctx.barrier(BarrierId(4));
    });
    let sched = scheduler(&report);
    assert_eq!(sched.mode, "executor");
    assert!(sched.wakeups > 0, "socket arrivals must produce wakeups");
    assert!(sched.queue_depth_high_watermark >= 1);
}

/// The sim fabric keeps its own virtual-time scheduler: no server threads,
/// no inbound queues, no scheduler report.
#[test]
fn sim_runs_report_no_scheduler() {
    let registry = ObjectRegistry::new();
    let config = sim_test_cluster(
        2,
        ProtocolConfig::no_migration(),
        SimConfig::perturbed(seed_corpus()[0]),
    );
    let report = Cluster::new(config, registry).run(|ctx| {
        ctx.barrier(BarrierId(5));
    });
    assert!(report.scheduler.is_none());
}
