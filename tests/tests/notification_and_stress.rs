//! End-to-end tests of the new-home notification mechanisms and a
//! multi-object stress test mixing access patterns, run on the threaded
//! cluster runtime.

use dsm_core::{NotificationMechanism, ProtocolConfig};
use dsm_integration_tests::test_cluster;
use dsm_net::MsgCategory;
use dsm_objspace::{BarrierId, HomeAssignment, LockId, NodeId, ObjectRegistry};
use dsm_runtime::{ArrayHandle, Cluster};

/// Run a single-writer workload under the given notification mechanism and
/// return (redirect messages, notification messages, migrations).
fn single_writer_with_mechanism(mechanism: NotificationMechanism) -> (u64, u64, u64) {
    let nodes = 4;
    let intervals = 12u64;
    let mut registry = ObjectRegistry::new();
    let data: ArrayHandle<u64> = ArrayHandle::register(
        &mut registry,
        "notify.obj",
        0,
        32,
        NodeId::MASTER,
        HomeAssignment::Master,
    );
    let lock = LockId::derive("notify.lock");
    let barrier = BarrierId(77);
    let protocol = ProtocolConfig::adaptive().with_notification(mechanism);
    let report = Cluster::new(test_cluster(nodes, protocol), registry).run(move |ctx| {
        // Node 1 is the single writer; node 2 and 3 are occasional readers
        // whose stale home hints exercise the notification mechanism.
        if ctx.node_id() == NodeId(1) {
            for i in 0..intervals {
                ctx.acquire(lock);
                ctx.view_mut(&data)[0] = i + 1;
                ctx.release(lock);
            }
        }
        ctx.barrier(barrier);
        if ctx.node_id().index() >= 2 {
            ctx.acquire(lock);
            let seen = ctx.view(&data)[0];
            assert_eq!(seen, intervals, "readers must observe the final value");
            ctx.release(lock);
        }
        ctx.barrier(barrier);
    });
    (
        report.messages(MsgCategory::Redirect),
        report.messages(MsgCategory::HomeNotify) + report.messages(MsgCategory::HomeLookup),
        report.migrations(),
    )
}

#[test]
fn forwarding_pointer_pays_redirections_but_no_notifications() {
    let (redirects, notifications, migrations) =
        single_writer_with_mechanism(NotificationMechanism::ForwardingPointer);
    assert!(migrations >= 1);
    assert_eq!(notifications, 0, "forwarding pointers never notify eagerly");
    assert!(
        redirects >= 1,
        "stale readers must be redirected at least once"
    );
}

#[test]
fn broadcast_notification_informs_other_nodes_eagerly() {
    let (_redirects, notifications, migrations) =
        single_writer_with_mechanism(NotificationMechanism::Broadcast);
    assert!(migrations >= 1);
    assert!(
        notifications >= migrations,
        "each migration must broadcast to the remaining nodes"
    );
}

#[test]
fn home_manager_posts_updates_to_the_manager() {
    let (_redirects, notifications, migrations) =
        single_writer_with_mechanism(NotificationMechanism::HomeManager);
    assert!(migrations >= 1);
    // The manager of the object is its initial home (the master). Migrations
    // away from the master need no post (the master already knows), but
    // subsequent migrations between workers do; with a single writer there
    // is typically exactly one migration, so notifications may be zero —
    // what matters is that readers still find the object (asserted inside
    // the workload) and the mechanism stays consistent.
    assert!(notifications <= migrations * 2);
}

#[test]
fn mixed_pattern_stress_run_preserves_every_object() {
    // 24 objects with three different access patterns, 4 nodes, adaptive
    // policy: single-writer objects (one per node), rotating-writer objects
    // and a lock-protected accumulator. After the run every object must hold
    // exactly the expected value on every node.
    let nodes = 4usize;
    let rounds = 8u64;
    let mut registry = ObjectRegistry::new();
    let single: Vec<ArrayHandle<u64>> = (0..nodes)
        .map(|i| {
            ArrayHandle::register(
                &mut registry,
                "stress.single",
                i as u64,
                8,
                NodeId::MASTER,
                HomeAssignment::RoundRobin,
            )
        })
        .collect();
    let rotating: Vec<ArrayHandle<u64>> = (0..8)
        .map(|i| {
            ArrayHandle::register(
                &mut registry,
                "stress.rotating",
                i as u64,
                4,
                NodeId::MASTER,
                HomeAssignment::Hash,
            )
        })
        .collect();
    let accumulator: ArrayHandle<u64> = ArrayHandle::register(
        &mut registry,
        "stress.accumulator",
        0,
        1,
        NodeId::MASTER,
        HomeAssignment::Master,
    );
    let lock = LockId::derive("stress.lock");
    let barrier = BarrierId(88);

    let report =
        Cluster::new(test_cluster(nodes, ProtocolConfig::adaptive()), registry).run(move |ctx| {
            let me = ctx.node_id().index();
            for round in 0..rounds {
                // Pattern 1: a lasting single writer per object, through a
                // zero-copy write view.
                {
                    let mut view = ctx.view_mut(&single[me]);
                    for slot in view.iter_mut() {
                        *slot = round + 1;
                    }
                }
                // Pattern 2: the writer of each rotating object changes every
                // round (transient single-writer pattern).
                for (i, handle) in rotating.iter().enumerate() {
                    if (round as usize + i) % nodes == me {
                        ctx.view_mut(handle)[0] = round + 1;
                    }
                }
                // Pattern 3: a lock-protected shared accumulator.
                ctx.synchronized(lock, || ctx.view_mut(&accumulator)[0] += 1);
                ctx.barrier(barrier);
            }
            // Verification on every node.
            assert_eq!(ctx.view(&accumulator)[0], rounds * nodes as u64);
            for handle in &single {
                assert_eq!(ctx.view(handle)[0], rounds);
            }
            for handle in &rotating {
                assert_eq!(ctx.view(handle)[0], rounds);
            }
            ctx.barrier(barrier);
        });
    // The lasting single-writer objects should have migrated to their
    // writers; the exact count for the rotating ones depends on feedback.
    assert!(report.migrations() >= 2);
    assert!(report.protocol.diffs_applied > 0);
}
