//! End-to-end tests of release-time flush batching on the threaded runtime.
//!
//! The acceptance claims of the batching work, checked on real workloads:
//!
//! * **Semantics** — final object contents are byte-identical with batching
//!   on and off (batching is purely a wire optimization);
//! * **Messages** — a seeded multi-object workload sends strictly fewer
//!   diff-propagation messages (`Diff` + `DiffBatch`) when batching is on;
//! * **Modeled time** — each saved message saves one Hockney start-up time
//!   `t0` plus its handling cost, so the modeled execution time drops;
//! * **Accounting** — the network statistics count one `DiffBatch` message
//!   per batch (matching the engine's `batched_flushes` counter), with the
//!   per-entry diffs' wire bytes summed, never one message per entry.

use dsm_core::{ProtocolConfig, DIFF_BATCH_ENTRY_HEADER_BYTES};
use dsm_integration_tests::{seed_corpus, sim_test_cluster, test_cluster};
use dsm_net::{MsgCategory, MESSAGE_HEADER_BYTES};
use dsm_objspace::{BarrierId, HomeAssignment, LockId, NodeId, ObjectRegistry};
use dsm_runtime::{ArrayHandle, Cluster, ExecutionReport, SimConfig};

use dsm_apps::sor::{self, SorParams};

/// SOR without home migration on four nodes: every node's band of rows is
/// homed round-robin across the cluster, so each phase release flushes
/// several same-home diffs — the batching sweet spot.
fn sor_run(flush_batching: bool) -> (f64, ExecutionReport) {
    let params = SorParams::small(48, 4);
    let config =
        test_cluster(4, ProtocolConfig::no_migration()).with_flush_batching(flush_batching);
    let run = sor::run(config, &params);
    (sor::checksum(&run.result), run.report)
}

#[test]
fn sor_batched_matches_unbatched_with_fewer_messages_and_lower_time() {
    let (batched_sum, batched) = sor_run(true);
    let (unbatched_sum, unbatched) = sor_run(false);

    // Byte-identical application results: the checksum is a deterministic
    // function of every matrix cell.
    assert_eq!(
        batched_sum, unbatched_sum,
        "batching changed the computed matrix"
    );

    // Strictly fewer diff-propagation messages...
    let batched_diffs = batched.network.diff_propagation_messages();
    let unbatched_diffs = unbatched.network.diff_propagation_messages();
    assert!(
        batched_diffs < unbatched_diffs,
        "batched SOR must send fewer diff messages ({batched_diffs} vs {unbatched_diffs})"
    );
    // ... and the same writes still arrive: per-entry flushes are conserved.
    assert_eq!(batched.protocol.diffs_sent, unbatched.protocol.diffs_sent);
    assert_eq!(
        batched.protocol.diffs_applied,
        unbatched.protocol.diffs_applied
    );

    // Each eliminated message saves at least one start-up time, so the
    // modeled execution time drops.
    assert!(
        batched.execution_time < unbatched.execution_time,
        "batched SOR must be faster under the Hockney model ({} vs {})",
        batched.execution_time,
        unbatched.execution_time
    );
}

#[test]
fn batch_accounting_is_single_message_per_batch() {
    let (_, batched) = sor_run(true);

    // The fabric recorded exactly one DiffBatch-category message per batch
    // the engines sent — k entries never inflate the message count.
    let batch_msgs = batched.network.category(MsgCategory::DiffBatch);
    assert!(batched.protocol.batched_flushes > 0, "SOR must batch");
    assert_eq!(batch_msgs.count, batched.protocol.batched_flushes);
    // Every batch is answered by exactly one ack.
    assert_eq!(
        batched.network.category(MsgCategory::DiffBatchAck).count,
        batched.protocol.batched_flushes
    );

    // Batched entries plus unbatched singletons account for every diff sent.
    let singleton_diffs = batched.network.category(MsgCategory::Diff).count;
    assert_eq!(
        batched.protocol.batch_entries + singleton_diffs,
        batched.protocol.diffs_sent,
        "every flushed diff is either a batch entry or a singleton DiffFlush"
    );

    // Byte accounting: batch wire bytes are the summed entry diffs plus one
    // fixed header per *message* and one small header per entry. The engine
    // tracks the summed diff payloads of everything it flushed, so the two
    // views must reconcile exactly.
    let diff_wire = batched.network.category(MsgCategory::Diff).bytes;
    let batch_wire = batch_msgs.bytes;
    let expected = batched.protocol.diff_bytes_sent
        + batched.protocol.batch_entries * DIFF_BATCH_ENTRY_HEADER_BYTES
        + (batched.protocol.batched_flushes + singleton_diffs) * MESSAGE_HEADER_BYTES;
    assert_eq!(
        diff_wire + batch_wire,
        expected,
        "diff payload bytes must be counted once, under exactly one message each"
    );
}

#[test]
fn single_object_intervals_never_batch() {
    // An interval that dirties one object falls back to the classic
    // DiffFlush path even with batching enabled — the wire behaviour for
    // the paper's single-counter workloads is unchanged.
    use dsm_apps::synthetic::{self, SyntheticParams};
    let params = SyntheticParams {
        repetition: 2,
        total_updates: 2 * 3 * 6,
        compute_ops: 0,
    };
    let run = synthetic::run(test_cluster(4, ProtocolConfig::no_migration()), &params);
    assert_eq!(run.report.protocol.batched_flushes, 0);
    assert_eq!(run.report.network.category(MsgCategory::DiffBatch).count, 0);
    assert!(run.report.protocol.diffs_sent > 0);
}

/// A `DiffBatch` raced by a migration grant on a perturbed link: node 1
/// batches two same-home diffs to node 0 while node 2's repeated writes
/// migrate one entry's home (adaptive policy) mid-flight. Node 1's release
/// is given a virtual-time head start to lose the race, so the old home
/// answers that entry with a **per-entry redirect inside the
/// `DiffBatchAck`** and the flusher re-plans it individually — and whatever
/// a seed does to the schedule, no write may be lost and no flush ack
/// dropped.
///
/// Ack-carried redirects are counted precisely: every wire
/// `ObjectRedirect`/`DiffRedirect` message produces exactly one
/// `note_redirect` at its receiver, so `redirections_suffered` exceeding
/// the `Redirect`-category message count is evidence of redirects that
/// travelled inside a batch ack.
#[test]
fn diff_batch_replans_redirected_entries_under_sim_reordering() {
    let mut ack_carried_redirects = 0u64;
    let seeds = seed_corpus();
    for &seed in &seeds {
        let mut registry = ObjectRegistry::new();
        let stays: ArrayHandle<u64> = ArrayHandle::register(
            &mut registry,
            "batch.sim.stays",
            0,
            4,
            NodeId::MASTER,
            HomeAssignment::Master,
        );
        let moves: ArrayHandle<u64> = ArrayHandle::register(
            &mut registry,
            "batch.sim.moves",
            0,
            4,
            NodeId::MASTER,
            HomeAssignment::Master,
        );
        let flusher_lock = LockId::derive("batch.sim.flusher");
        let thief_lock = LockId::derive("batch.sim.thief");
        let done = BarrierId(0xBA7);
        // Adaptive: node 2's first interval flushes a remote write (C = 1),
        // its second write fault migrates `moves` home to node 2. Node 1's
        // single interval never triggers a migration of its own.
        let config = sim_test_cluster(4, ProtocolConfig::adaptive(), SimConfig::stormy(seed));
        let report = Cluster::new(config, registry).run(move |ctx| {
            match ctx.node_id().index() {
                1 => {
                    // One interval dirtying both objects: the release groups
                    // them into one DiffBatch aimed at node 0 (node 1's
                    // belief is stale once node 2 has stolen `moves`).
                    ctx.acquire(flusher_lock);
                    ctx.view_mut(&stays)[1] = 11;
                    ctx.view_mut(&moves)[1] = 22;
                    // Hold the interval open (in virtual time) long enough
                    // that the thief's migration always wins the race to
                    // node 0, whatever the perturbations do: the margin
                    // dwarfs any jitter/hold/burst delay of the thief's
                    // handful of round trips.
                    ctx.charge(dsm_model::SimDuration::from_millis(100.0));
                    ctx.release(flusher_lock);
                }
                2 => {
                    // Start after the flusher's fault-ins are (virtually)
                    // done, so its home beliefs are already stale when the
                    // migration happens.
                    ctx.charge(dsm_model::SimDuration::from_millis(20.0));
                    for value in [33, 34] {
                        ctx.synchronized(thief_lock, || {
                            ctx.view_mut(&moves)[2] = value;
                        });
                    }
                }
                _ => {}
            }
            ctx.barrier(done);
            // Every node observes both writers' slots — neither the applied
            // nor the re-planned entry may be lost.
            let stays_view = ctx.read(&stays);
            let moves_view = ctx.read(&moves);
            assert_eq!(stays_view[1], 11, "seed {seed:#x}: stays entry lost");
            assert_eq!(moves_view[1], 22, "seed {seed:#x}: moves entry lost");
            assert_eq!(moves_view[2], 34, "seed {seed:#x}: thief write lost");
            ctx.barrier(done);
        });

        // The flusher's interval must have batched, every batch acked, and
        // every flushed diff applied (finish_release would have panicked on
        // a lost ack; this checks the wire view agrees).
        assert!(
            report.protocol.batched_flushes >= 1,
            "seed {seed:#x}: the two-object interval must ship one DiffBatch"
        );
        assert_eq!(
            report.network.category(MsgCategory::DiffBatch).count,
            report.network.category(MsgCategory::DiffBatchAck).count,
            "seed {seed:#x}: every batch is acked exactly once"
        );
        assert_eq!(
            report.protocol.diffs_sent, report.protocol.diffs_applied,
            "seed {seed:#x}: every flushed diff must be applied exactly once"
        );
        let wire_redirects = report.network.category(MsgCategory::Redirect).count;
        assert!(
            report.protocol.redirections_suffered >= wire_redirects,
            "seed {seed:#x}: every wire redirect is noted exactly once"
        );
        let ack_carried = report.protocol.redirections_suffered - wire_redirects;
        assert!(
            ack_carried > 0,
            "seed {seed:#x}: the batch must lose the race and see an ack-carried \
             per-entry redirect (virtual timings force this for every seed)"
        );
        ack_carried_redirects += ack_carried;
    }
    assert!(
        ack_carried_redirects >= seeds.len() as u64,
        "every seed of {seeds:?} must exercise the ack-carried batch-entry redirect re-plan"
    );
}
