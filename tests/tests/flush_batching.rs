//! End-to-end tests of release-time flush batching on the threaded runtime.
//!
//! The acceptance claims of the batching work, checked on real workloads:
//!
//! * **Semantics** — final object contents are byte-identical with batching
//!   on and off (batching is purely a wire optimization);
//! * **Messages** — a seeded multi-object workload sends strictly fewer
//!   diff-propagation messages (`Diff` + `DiffBatch`) when batching is on;
//! * **Modeled time** — each saved message saves one Hockney start-up time
//!   `t0` plus its handling cost, so the modeled execution time drops;
//! * **Accounting** — the network statistics count one `DiffBatch` message
//!   per batch (matching the engine's `batched_flushes` counter), with the
//!   per-entry diffs' wire bytes summed, never one message per entry.

use dsm_core::{ProtocolConfig, DIFF_BATCH_ENTRY_HEADER_BYTES};
use dsm_integration_tests::test_cluster;
use dsm_net::{MsgCategory, MESSAGE_HEADER_BYTES};
use dsm_runtime::ExecutionReport;

use dsm_apps::sor::{self, SorParams};

/// SOR without home migration on four nodes: every node's band of rows is
/// homed round-robin across the cluster, so each phase release flushes
/// several same-home diffs — the batching sweet spot.
fn sor_run(flush_batching: bool) -> (f64, ExecutionReport) {
    let params = SorParams::small(48, 4);
    let config =
        test_cluster(4, ProtocolConfig::no_migration()).with_flush_batching(flush_batching);
    let run = sor::run(config, &params);
    (sor::checksum(&run.result), run.report)
}

#[test]
fn sor_batched_matches_unbatched_with_fewer_messages_and_lower_time() {
    let (batched_sum, batched) = sor_run(true);
    let (unbatched_sum, unbatched) = sor_run(false);

    // Byte-identical application results: the checksum is a deterministic
    // function of every matrix cell.
    assert_eq!(
        batched_sum, unbatched_sum,
        "batching changed the computed matrix"
    );

    // Strictly fewer diff-propagation messages...
    let batched_diffs = batched.network.diff_propagation_messages();
    let unbatched_diffs = unbatched.network.diff_propagation_messages();
    assert!(
        batched_diffs < unbatched_diffs,
        "batched SOR must send fewer diff messages ({batched_diffs} vs {unbatched_diffs})"
    );
    // ... and the same writes still arrive: per-entry flushes are conserved.
    assert_eq!(batched.protocol.diffs_sent, unbatched.protocol.diffs_sent);
    assert_eq!(
        batched.protocol.diffs_applied,
        unbatched.protocol.diffs_applied
    );

    // Each eliminated message saves at least one start-up time, so the
    // modeled execution time drops.
    assert!(
        batched.execution_time < unbatched.execution_time,
        "batched SOR must be faster under the Hockney model ({} vs {})",
        batched.execution_time,
        unbatched.execution_time
    );
}

#[test]
fn batch_accounting_is_single_message_per_batch() {
    let (_, batched) = sor_run(true);

    // The fabric recorded exactly one DiffBatch-category message per batch
    // the engines sent — k entries never inflate the message count.
    let batch_msgs = batched.network.category(MsgCategory::DiffBatch);
    assert!(batched.protocol.batched_flushes > 0, "SOR must batch");
    assert_eq!(batch_msgs.count, batched.protocol.batched_flushes);
    // Every batch is answered by exactly one ack.
    assert_eq!(
        batched.network.category(MsgCategory::DiffBatchAck).count,
        batched.protocol.batched_flushes
    );

    // Batched entries plus unbatched singletons account for every diff sent.
    let singleton_diffs = batched.network.category(MsgCategory::Diff).count;
    assert_eq!(
        batched.protocol.batch_entries + singleton_diffs,
        batched.protocol.diffs_sent,
        "every flushed diff is either a batch entry or a singleton DiffFlush"
    );

    // Byte accounting: batch wire bytes are the summed entry diffs plus one
    // fixed header per *message* and one small header per entry. The engine
    // tracks the summed diff payloads of everything it flushed, so the two
    // views must reconcile exactly.
    let diff_wire = batched.network.category(MsgCategory::Diff).bytes;
    let batch_wire = batch_msgs.bytes;
    let expected = batched.protocol.diff_bytes_sent
        + batched.protocol.batch_entries * DIFF_BATCH_ENTRY_HEADER_BYTES
        + (batched.protocol.batched_flushes + singleton_diffs) * MESSAGE_HEADER_BYTES;
    assert_eq!(
        diff_wire + batch_wire,
        expected,
        "diff payload bytes must be counted once, under exactly one message each"
    );
}

#[test]
fn single_object_intervals_never_batch() {
    // An interval that dirties one object falls back to the classic
    // DiffFlush path even with batching enabled — the wire behaviour for
    // the paper's single-counter workloads is unchanged.
    use dsm_apps::synthetic::{self, SyntheticParams};
    let params = SyntheticParams {
        repetition: 2,
        total_updates: 2 * 3 * 6,
        compute_ops: 0,
    };
    let run = synthetic::run(test_cluster(4, ProtocolConfig::no_migration()), &params);
    assert_eq!(run.report.protocol.batched_flushes, 0);
    assert_eq!(run.report.network.category(MsgCategory::DiffBatch).count, 0);
    assert!(run.report.protocol.diffs_sent > 0);
}
