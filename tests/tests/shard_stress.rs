//! Seeded multi-threaded stress suite for the sharded protocol engine.
//!
//! Every test drives the *real* threaded runtime (application + protocol
//! server threads per node, no global engine lock) with schedules derived
//! from fixed seeds, and checks the concurrency claims the engine makes:
//!
//! * **no deadlock** — the runs complete (busy payloads are deferred, never
//!   blocked on; fetch-with-live-writes is refused at the source);
//! * **no lost updates** — every lock-protected increment is visible in the
//!   final contents, which equal a pure-function expectation computed by
//!   replaying the per-node seeds outside the cluster;
//! * **stable final contents** — every node observes the same bytes, on
//!   every run of the same seed (re-run a failing seed to shrink/replay).
//!
//! The per-(node, round) operation sequences are pure functions of the
//! seed, so the expected counters can be computed without running the
//! cluster; thread interleaving may vary between runs, but the final
//! contents may not.

use dsm_core::{MigrationPolicy, ProtocolConfig};
use dsm_integration_tests::{corpus_seed, fast_test_cluster};
use dsm_objspace::{BarrierId, HomeAssignment, LockId, NodeId, ObjectRegistry};
use dsm_runtime::{ArrayHandle, Cluster};
use dsm_util::SmallRng;

const NODES: usize = 4;
const OBJECTS: usize = 16;
const ROUNDS: usize = 30;
const PICKS_PER_ROUND: usize = 3;

/// The deterministic per-node schedule stream for `seed`.
fn node_rng(seed: u64, node: usize) -> SmallRng {
    SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (0xD15C_0000 + node as u64))
}

/// Replay the schedule outside the cluster: how many times does each node
/// increment each object?
fn expected_counts(seed: u64) -> Vec<[u64; NODES]> {
    let mut counts = vec![[0u64; NODES]; OBJECTS];
    for (node, mut rng) in (0..NODES).map(|n| node_rng(seed, n)).enumerate() {
        for _ in 0..ROUNDS * PICKS_PER_ROUND {
            counts[rng.gen_index(OBJECTS)][node] += 1;
        }
    }
    counts
}

/// Register the stress objects: one `[u64; 1 + NODES]` counter block per
/// object (slot 0 totals, slot 1+n is node n's private tally), homes spread
/// round-robin so every node starts as home of some objects.
fn registry() -> (ObjectRegistry, Vec<ArrayHandle<u64>>, Vec<LockId>) {
    let mut registry = ObjectRegistry::new();
    let handles: Vec<ArrayHandle<u64>> = (0..OBJECTS)
        .map(|i| {
            ArrayHandle::register(
                &mut registry,
                "stress.shard",
                i as u64,
                1 + NODES,
                NodeId::MASTER,
                HomeAssignment::RoundRobin,
            )
        })
        .collect();
    let locks: Vec<LockId> = (0..OBJECTS)
        .map(|i| LockId::derive(&format!("stress.shard.lock.{i}")))
        .collect();
    (registry, handles, locks)
}

/// Run the seeded soak: every node performs its schedule of lock-protected
/// increments across many objects while homes migrate underneath, then all
/// nodes verify the final contents against the replayed expectation.
fn soak(seed: u64) {
    let (registry, handles, locks) = registry();
    let barrier = BarrierId(0x57E5);
    let expected = expected_counts(seed);
    let expected_in_run = expected.clone();

    let report = Cluster::new(
        fast_test_cluster(NODES, ProtocolConfig::adaptive()),
        registry,
    )
    .run(move |ctx| {
        let me = ctx.node_id().index();
        let mut rng = node_rng(seed, me);
        for _ in 0..ROUNDS {
            for _ in 0..PICKS_PER_ROUND {
                let pick = rng.gen_index(OBJECTS);
                ctx.synchronized(locks[pick], || {
                    let mut view = ctx.view_mut(&handles[pick]);
                    view[0] += 1;
                    view[1 + me] += 1;
                    // Linearizability-style mid-run invariant: inside the
                    // critical section the total must equal the sum of the
                    // per-node tallies — a lost update breaks this long
                    // before the final check.
                    let total: u64 = view[1..].iter().sum();
                    assert_eq!(
                        view[0], total,
                        "seed {seed:#x}: lost update on object {pick} (node {me})"
                    );
                });
            }
        }
        ctx.barrier(barrier);
        // Every node verifies every object against the pure replay.
        for (i, handle) in handles.iter().enumerate() {
            ctx.synchronized(locks[i], || {
                let view = ctx.view(handle);
                let total: u64 = expected_in_run[i].iter().sum();
                assert_eq!(
                    view[0], total,
                    "seed {seed:#x}: object {i} total diverged on node {me}"
                );
                for (n, &count) in expected_in_run[i].iter().enumerate() {
                    assert_eq!(
                        view[1 + n],
                        count,
                        "seed {seed:#x}: object {i} tally of node {n} diverged on node {me}"
                    );
                }
            });
        }
        ctx.barrier(barrier);
    });

    // Global conservation: every scheduled increment happened exactly once.
    let scheduled = (NODES * ROUNDS * PICKS_PER_ROUND) as u64;
    let landed: u64 = expected.iter().map(|c| c.iter().sum::<u64>()).sum();
    assert_eq!(
        landed, scheduled,
        "seed {seed:#x}: schedule replay is self-consistent"
    );
    // The run exercised real cross-node traffic.
    assert!(
        report.protocol.fault_ins > 0,
        "seed {seed:#x}: soak must fault objects in"
    );
    assert!(
        report.protocol.diffs_applied > 0,
        "seed {seed:#x}: soak must flush diffs"
    );
}

// The soak seeds come from the shared corpus helper (tests/src/lib.rs):
// override with DSM_SEEDS=... to sweep new schedules; indices wrap, so the
// three named tests cover any corpus size. A failure names the seed.

#[test]
fn stress_soak_seed_1_no_lost_updates() {
    soak(corpus_seed(0));
}

#[test]
fn stress_soak_seed_2_no_lost_updates() {
    soak(corpus_seed(1));
}

#[test]
fn stress_soak_seed_3_no_lost_updates() {
    soak(corpus_seed(2));
}

/// Maximum migration churn: under the JUMP policy every remote write fault
/// migrates the home, and the writer of every object rotates every round,
/// so homes chase writers continuously while readers chase stale forwarding
/// pointers. The counters must still come out exact on every node.
#[test]
fn stress_migration_hammer_rotating_writers() {
    const HAMMER_OBJECTS: usize = 4;
    const HAMMER_ROUNDS: usize = 16;
    let mut registry = ObjectRegistry::new();
    let handles: Vec<ArrayHandle<u64>> = (0..HAMMER_OBJECTS)
        .map(|i| {
            ArrayHandle::register(
                &mut registry,
                "stress.hammer",
                i as u64,
                1 + NODES,
                NodeId::MASTER,
                HomeAssignment::RoundRobin,
            )
        })
        .collect();
    let locks: Vec<LockId> = (0..HAMMER_OBJECTS)
        .map(|i| LockId::derive(&format!("stress.hammer.lock.{i}")))
        .collect();
    let barrier = BarrierId(0x57E6);
    let protocol = ProtocolConfig::no_migration().with_migration(MigrationPolicy::MigrateOnRequest);

    let report = Cluster::new(fast_test_cluster(NODES, protocol), registry).run(move |ctx| {
        let me = ctx.node_id().index();
        for round in 0..HAMMER_ROUNDS {
            // Writer of each object rotates every round: all four objects
            // are written each round, each by a different node.
            let write_obj = (round + me) % HAMMER_OBJECTS;
            ctx.synchronized(locks[write_obj], || {
                let mut view = ctx.view_mut(&handles[write_obj]);
                view[0] += 1;
                view[1 + me] += 1;
            });
            // And a racing reader on a different object, chasing whatever
            // forwarding pointers the migrations left behind.
            let read_obj = (round + me + 2) % HAMMER_OBJECTS;
            ctx.synchronized(locks[read_obj], || {
                let view = ctx.view(&handles[read_obj]);
                let total: u64 = view[1..].iter().sum();
                assert_eq!(view[0], total, "reader saw a torn object {read_obj}");
            });
        }
        ctx.barrier(barrier);
        // Each object was written once per round, once by each node every
        // HAMMER_OBJECTS rounds.
        for (i, handle) in handles.iter().enumerate() {
            ctx.synchronized(locks[i], || {
                let view = ctx.view(handle);
                assert_eq!(view[0], HAMMER_ROUNDS as u64, "object {i} total");
                for n in 0..NODES {
                    assert_eq!(
                        view[1 + n],
                        (HAMMER_ROUNDS / HAMMER_OBJECTS) as u64,
                        "object {i} tally of node {n}"
                    );
                }
            });
        }
        ctx.barrier(barrier);
    });

    // Rotating writers under JUMP must keep the homes moving; at least the
    // first full rotation migrates every object away from a foreign writer.
    assert!(
        report.migrations() >= (NODES - 1) as u64,
        "JUMP with rotating writers barely migrated: {}",
        report.migrations()
    );
    assert!(
        report.protocol.redirections_suffered > 0,
        "migration churn must produce redirection chases"
    );
}

/// The same seed run twice produces byte-identical final contents even
/// though thread interleavings differ — the "stable final contents" claim,
/// demonstrated end to end: both runs are checked against the same replayed
/// expectation *and* their reported migration totals stay within the
/// schedule's bounds.
#[test]
fn stress_repeat_seed_is_deterministic() {
    soak(corpus_seed(0));
    soak(corpus_seed(0));
}

/// Multi-object intervals under release-time flush batching: every node
/// writes a handful of objects inside ONE critical section per round, so a
/// release flushes several diffs at once and the per-home groups travel as
/// `DiffBatch` messages. Run the identical seeded schedule with batching on
/// and off; both runs must produce the final contents the pure seed replay
/// predicts (batching is a wire optimization, never a semantic change), and
/// the batched run must actually have batched.
#[test]
fn stress_batched_mode_contents_match_unbatched() {
    const BATCH_OBJECTS: usize = 12;
    const BATCH_ROUNDS: usize = 20;
    const WRITES_PER_ROUND: usize = 5;
    // Corpus-derived (DSM_SEEDS-overridable), offset so the schedule is not
    // the soak schedule.
    let seed = corpus_seed(0) ^ 0x5BA7_C4ED;

    let schedule_rng = |node: usize| {
        SmallRng::seed_from_u64(
            seed ^ (0xBA7C_0000 + node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
    };
    // Pure replay of the schedule: per-object, per-node increment counts.
    let mut expected = vec![[0u64; NODES]; BATCH_OBJECTS];
    for (node, mut rng) in (0..NODES).map(|n| (n, schedule_rng(n))) {
        for _ in 0..BATCH_ROUNDS * WRITES_PER_ROUND {
            expected[rng.gen_index(BATCH_OBJECTS)][node] += 1;
        }
    }

    let run = |flush_batching: bool| {
        let mut registry = ObjectRegistry::new();
        let handles: Vec<ArrayHandle<u64>> = (0..BATCH_OBJECTS)
            .map(|i| {
                ArrayHandle::register(
                    &mut registry,
                    "stress.batch",
                    i as u64,
                    NODES,
                    NodeId::MASTER,
                    HomeAssignment::RoundRobin,
                )
            })
            .collect();
        let lock = LockId::derive("stress.batch.lock");
        let barrier = BarrierId(0x57E7);
        let expected_in_run = expected.clone();
        let config = fast_test_cluster(NODES, ProtocolConfig::adaptive())
            .with_flush_batching(flush_batching);
        let report = Cluster::new(config, registry).run(move |ctx| {
            let me = ctx.node_id().index();
            let mut rng = schedule_rng(me);
            for _ in 0..BATCH_ROUNDS {
                // All of a round's writes happen inside one critical
                // section, so its release flushes them together — dirty
                // objects homed on the same node form one DiffBatch.
                ctx.synchronized(lock, || {
                    for _ in 0..WRITES_PER_ROUND {
                        let pick = rng.gen_index(BATCH_OBJECTS);
                        ctx.view_mut(&handles[pick])[me] += 1;
                    }
                });
            }
            ctx.barrier(barrier);
            for (i, handle) in handles.iter().enumerate() {
                ctx.synchronized(lock, || {
                    let view = ctx.view(handle);
                    for (n, &count) in expected_in_run[i].iter().enumerate() {
                        assert_eq!(
                            view[n], count,
                            "seed {seed:#x}, batching={flush_batching}: object {i} tally \
                             of node {n} diverged on node {me}"
                        );
                    }
                });
            }
            ctx.barrier(barrier);
        });
        report
    };

    let batched = run(true);
    let unbatched = run(false);

    // Both runs already verified the same replayed contents on every node;
    // check the wire-level claims on top.
    assert!(
        batched.protocol.batched_flushes > 0,
        "multi-object intervals must form batches"
    );
    assert!(
        batched.protocol.batch_entries >= 2 * batched.protocol.batched_flushes,
        "every batch carries at least two entries"
    );
    assert_eq!(
        unbatched.protocol.batched_flushes, 0,
        "flush_batching(false) must stay on the one-DiffFlush-per-object path"
    );
    // A batch of k entries replaces k Diff messages with one DiffBatch, so
    // the diff-propagation message count must come out strictly lower.
    assert!(
        batched.network.diff_propagation_messages() < unbatched.network.diff_propagation_messages(),
        "batching must reduce diff-propagation messages ({} vs {})",
        batched.network.diff_propagation_messages(),
        unbatched.network.diff_propagation_messages()
    );
}
