//! The seeded policy-equivalence suite.
//!
//! The trait-based policy subsystem replaced the closed `MigrationPolicy`
//! enum inside the engine, but the enum's decision methods were kept
//! verbatim as the **frozen pre-refactor spec**. This suite proves the
//! built-in trait policies reproduce that spec bit-for-bit:
//!
//! * [`SpecPolicy`] is a trait adapter that delegates every decision and
//!   threshold to the enum spec — running the engine once with a built-in
//!   policy and once with its `SpecPolicy` twin must yield *identical*
//!   migration decisions (home locations after every interval), protocol
//!   statistics (message counts, `ProtocolStats` is `Eq`), and final home
//!   bytes, on deterministic fig2/fig3-shaped traces and on seeded random
//!   schedules;
//! * the threaded fig2/fig3 workloads (SOR, ASP) must produce bit-identical
//!   application results either way — and identical wire message counts on
//!   the no-migration configuration, whose message DAG is a pure function
//!   of the workload;
//! * the beyond-the-paper policies prove the trait is sufficient: the
//!   hysteresis policy suffers strictly fewer migrate-backs than the
//!   adaptive policy on a ping-pong access trace, and a mixed cluster runs
//!   different policies on different objects through per-object overrides.

use dsm_apps::{asp, sor};
use dsm_core::DiffOutcome;
use dsm_core::{
    AccessPlan, Decision, HomeMigrationPolicy, HysteresisPolicy, MigrationPolicy,
    ObjectRequestOutcome, PolicyInputs, ProtocolConfig, ProtocolEngine, ProtocolStats,
};
use dsm_integration_tests::test_cluster;
use dsm_objspace::{HomeAssignment, NodeId, ObjectId, ObjectRegistry};
use dsm_util::SmallRng;
use std::sync::Arc;

/// Trait adapter around the frozen pre-refactor enum spec: every decision
/// and threshold comes from the original `MigrationState` methods taking
/// `&MigrationPolicy`. If the engine behaves identically with this adapter
/// and with the built-in trait impl, the refactor preserved the decision
/// rules bit-for-bit.
#[derive(Debug)]
struct SpecPolicy(MigrationPolicy);

impl HomeMigrationPolicy for SpecPolicy {
    fn label(&self) -> &str {
        // Deliberately different from the built-in labels: decisions must
        // not depend on the label.
        "SPEC"
    }

    fn decide(&self, inputs: &PolicyInputs<'_>) -> Decision {
        if inputs.state.should_migrate(
            &self.0,
            inputs.requester,
            inputs.for_write,
            inputs.object_bytes,
            inputs.half_peak_len,
        ) {
            Decision::Migrate
        } else {
            Decision::Stay
        }
    }

    fn current_threshold(&self, inputs: &PolicyInputs<'_>) -> f64 {
        inputs
            .state
            .current_threshold(&self.0, inputs.object_bytes, inputs.half_peak_len)
    }
}

const OBJ_BYTES: usize = 128;

/// One deterministic access step of a trace: `writer` opens an interval,
/// writes `objs_w` (fault-in + flush as needed) and reads `objs_r`.
#[derive(Debug, Clone)]
struct Step {
    node: usize,
    writes: Vec<ObjectId>,
    reads: Vec<ObjectId>,
}

/// A deterministic single-threaded engine cluster driving a trace — no
/// threads, no scheduling noise: every run of the same trace produces the
/// same decisions, counts and bytes.
struct Harness {
    engines: Vec<ProtocolEngine>,
}

impl Harness {
    fn new(num_nodes: usize, config: ProtocolConfig, objects: &[ObjectId]) -> Harness {
        let mut registry = ObjectRegistry::new();
        for (i, _) in objects.iter().enumerate() {
            registry.register_named(
                "eq.obj",
                i as u64,
                OBJ_BYTES,
                NodeId::MASTER,
                HomeAssignment::RoundRobin,
            );
        }
        let registry = Arc::new(registry);
        Harness {
            engines: (0..num_nodes)
                .map(|n| {
                    ProtocolEngine::new(
                        NodeId::from(n),
                        num_nodes,
                        config.clone(),
                        Arc::clone(&registry),
                    )
                })
                .collect(),
        }
    }

    /// Fault `obj` in at `node` (following redirects), optionally for write.
    fn fault_in(&self, node: usize, obj: ObjectId, for_write: bool) {
        let plan = if for_write {
            self.engines[node].plan_write(obj)
        } else {
            self.engines[node].plan_read(obj)
        };
        if let AccessPlan::Fetch { mut target } = plan {
            let mut hops = 0;
            loop {
                let requester = self.engines[node].node();
                match self.engines[target.index()]
                    .handle_object_request(obj, requester, for_write, hops)
                {
                    ObjectRequestOutcome::Reply {
                        data,
                        version,
                        migration,
                        ..
                    } => {
                        self.engines[node].install_object(obj, data, version, migration);
                        break;
                    }
                    ObjectRequestOutcome::Redirect { hint, epoch } => {
                        self.engines[node].note_redirect(obj, hint, epoch);
                        hops += 1;
                        assert!(hops <= self.engines.len() as u32 + 2, "redirect loop");
                        target = hint;
                    }
                    ObjectRequestOutcome::Busy => unreachable!("single-threaded"),
                }
            }
            let replanned = if for_write {
                self.engines[node].plan_write(obj)
            } else {
                self.engines[node].plan_read(obj)
            };
            assert_eq!(replanned, AccessPlan::LocalHit);
        }
    }

    /// Run one interval of `step`, writing `value` into every written
    /// object's first byte.
    fn interval(&self, step: &Step, value: u8) {
        let node = step.node;
        self.engines[node].begin_interval();
        for &obj in &step.reads {
            self.fault_in(node, obj, false);
            self.engines[node].with_object(obj, |d| {
                let _ = d.bytes()[0];
            });
        }
        for &obj in &step.writes {
            self.fault_in(node, obj, true);
            self.engines[node].with_object_mut(obj, |d| d.bytes_mut()[0] = value);
        }
        for plan in self.engines[node].prepare_release() {
            let mut target = plan.target;
            let mut hops = 0;
            loop {
                let from = self.engines[node].node();
                match self.engines[target.index()].handle_diff(plan.obj, &plan.diff, from, hops) {
                    DiffOutcome::Applied { new_version } => {
                        self.engines[node].complete_flush(plan.obj, new_version);
                        break;
                    }
                    DiffOutcome::Redirect { hint, epoch } => {
                        self.engines[node].note_redirect(plan.obj, hint, epoch);
                        hops += 1;
                        assert!(hops <= self.engines.len() as u32 + 2, "redirect loop");
                        target = hint;
                    }
                    DiffOutcome::Busy => unreachable!("single-threaded"),
                }
            }
        }
        self.engines[node].finish_release();
    }

    /// The current home node of `obj` (exactly one engine must claim it).
    fn home_of(&self, obj: ObjectId) -> usize {
        let homes: Vec<usize> = (0..self.engines.len())
            .filter(|&n| self.engines[n].is_home(obj))
            .collect();
        assert_eq!(homes.len(), 1, "exactly one home for {obj}: {homes:?}");
        homes[0]
    }

    /// Home bytes of `obj` at its current home.
    fn bytes_of(&self, obj: ObjectId) -> Vec<u8> {
        self.engines[self.home_of(obj)].home_bytes(obj).unwrap()
    }

    /// Merged protocol statistics across all engines.
    fn stats(&self) -> ProtocolStats {
        let mut total = ProtocolStats::default();
        for engine in &self.engines {
            total.merge(&engine.stats());
        }
        total
    }
}

fn objects(count: usize) -> Vec<ObjectId> {
    (0..count)
        .map(|i| ObjectId::derive("eq.obj", i as u64))
        .collect()
}

/// A fig2-shaped SOR trace: rows round-robin homed over the cluster, each
/// node repeatedly writing its band and reading the boundary rows of the
/// neighbouring bands — the red-black phase structure that makes row homes
/// migrate to their writers.
fn sor_trace(num_nodes: usize, rows: usize, iterations: usize) -> (Vec<ObjectId>, Vec<Step>) {
    let objs = objects(rows);
    let band = rows / num_nodes;
    let mut steps = Vec::new();
    for _ in 0..iterations {
        for node in 0..num_nodes {
            let lo = node * band;
            let hi = lo + band;
            let mut reads = Vec::new();
            if lo > 0 {
                reads.push(objs[lo - 1]);
            }
            if hi < rows {
                reads.push(objs[hi]);
            }
            steps.push(Step {
                node,
                writes: objs[lo..hi].to_vec(),
                reads,
            });
        }
    }
    (objs, steps)
}

/// A fig3-shaped ASP trace: in round `k` the owner of row `k` updates it
/// and every other node reads it (the broadcast of the pivot row).
fn asp_trace(num_nodes: usize, rows: usize) -> (Vec<ObjectId>, Vec<Step>) {
    let objs = objects(rows);
    let mut steps = Vec::new();
    for (k, &obj) in objs.iter().enumerate() {
        let owner = k % num_nodes;
        steps.push(Step {
            node: owner,
            writes: vec![obj],
            reads: Vec::new(),
        });
        for node in 0..num_nodes {
            if node != owner {
                steps.push(Step {
                    node,
                    writes: Vec::new(),
                    reads: vec![obj],
                });
            }
        }
    }
    (objs, steps)
}

/// A seeded random schedule over a handful of objects.
fn random_trace(
    seed: u64,
    num_nodes: usize,
    count: usize,
    steps: usize,
) -> (Vec<ObjectId>, Vec<Step>) {
    let objs = objects(count);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut trace = Vec::new();
    for _ in 0..steps {
        let node = rng.gen_index(num_nodes);
        let mut writes = Vec::new();
        let mut reads = Vec::new();
        for &obj in &objs {
            match rng.gen_index(4) {
                0 => writes.push(obj),
                1 => reads.push(obj),
                _ => {}
            }
        }
        trace.push(Step {
            node,
            writes,
            reads,
        });
    }
    (objs, trace)
}

/// Drive `trace` under `config`, recording the home of every object after
/// every interval (the bit-level decision log), the merged statistics and
/// the final home bytes.
fn run_trace(
    num_nodes: usize,
    config: ProtocolConfig,
    objs: &[ObjectId],
    trace: &[Step],
) -> (Vec<usize>, ProtocolStats, Vec<Vec<u8>>) {
    let harness = Harness::new(num_nodes, config, objs);
    let mut decision_log = Vec::new();
    for (i, step) in trace.iter().enumerate() {
        harness.interval(step, (i % 250) as u8 + 1);
        for &obj in objs {
            decision_log.push(harness.home_of(obj));
        }
    }
    let bytes = objs.iter().map(|&o| harness.bytes_of(o)).collect();
    (decision_log, harness.stats(), bytes)
}

/// The policies under equivalence test: the paper's adaptive threshold, the
/// fixed thresholds and NoHM, each paired with its `SpecPolicy` twin.
fn spec_pairs() -> Vec<MigrationPolicy> {
    vec![
        MigrationPolicy::adaptive(),
        MigrationPolicy::fixed(1),
        MigrationPolicy::fixed(2),
        MigrationPolicy::NoMigration,
    ]
}

fn assert_equivalent(
    what: &str,
    num_nodes: usize,
    objs: &[ObjectId],
    trace: &[Step],
    spec: &MigrationPolicy,
) {
    let builtin = ProtocolConfig::no_migration().with_migration(spec.clone());
    let oracle = ProtocolConfig::no_migration()
        .with_migration(Arc::new(SpecPolicy(spec.clone())) as Arc<dyn HomeMigrationPolicy>);
    let (decisions_b, stats_b, bytes_b) = run_trace(num_nodes, builtin, objs, trace);
    let (decisions_s, stats_s, bytes_s) = run_trace(num_nodes, oracle, objs, trace);
    assert_eq!(
        decisions_b, decisions_s,
        "{what} ({spec:?}): migration decisions diverged from the enum spec"
    );
    assert_eq!(
        stats_b, stats_s,
        "{what} ({spec:?}): protocol statistics (message counts, telemetry) diverged"
    );
    assert_eq!(
        bytes_b, bytes_s,
        "{what} ({spec:?}): final home contents diverged"
    );
}

#[test]
fn builtin_policies_reproduce_the_enum_spec_on_the_fig2_sor_trace() {
    let (objs, trace) = sor_trace(4, 16, 6);
    for spec in spec_pairs() {
        assert_equivalent("fig2 SOR trace", 4, &objs, &trace, &spec);
    }
}

#[test]
fn builtin_policies_reproduce_the_enum_spec_on_the_fig3_asp_trace() {
    let (objs, trace) = asp_trace(8, 16);
    for spec in spec_pairs() {
        assert_equivalent("fig3 ASP trace", 8, &objs, &trace, &spec);
    }
}

#[test]
fn builtin_policies_reproduce_the_enum_spec_on_seeded_random_schedules() {
    for seed in [0x51D0u64, 0xB10B, 0xFA27] {
        let (objs, trace) = random_trace(seed, 5, 6, 60);
        for spec in spec_pairs() {
            assert_equivalent("seeded random schedule", 5, &objs, &trace, &spec);
        }
    }
}

/// The related-work baselines go through the same trait surface; check them
/// against the spec on the random schedules too (JUMP migrates on every
/// write fault, so this also exercises long migration chains).
#[test]
fn related_work_baselines_reproduce_the_enum_spec() {
    let (objs, trace) = random_trace(0x7E1A, 4, 4, 50);
    for spec in [
        MigrationPolicy::MigrateOnRequest,
        MigrationPolicy::lazy_flushing(),
    ] {
        assert_equivalent("seeded random schedule", 4, &objs, &trace, &spec);
    }
}

/// Threaded fig2/fig3 workloads: the application result must be
/// bit-identical between the built-in policy and its spec twin, and — on
/// the no-migration configuration, whose message DAG is a pure function of
/// the workload — the wire message counts must match exactly as well.
#[test]
fn threaded_fig_workloads_match_the_spec_policy() {
    let sor_params = sor::SorParams::small(32, 4);
    let asp_params = asp::AspParams::small(32);
    for spec in [MigrationPolicy::adaptive(), MigrationPolicy::NoMigration] {
        let builtin_cfg = ProtocolConfig::no_migration().with_migration(spec.clone());
        let oracle_cfg = ProtocolConfig::no_migration()
            .with_migration(Arc::new(SpecPolicy(spec.clone())) as Arc<dyn HomeMigrationPolicy>);
        let b = sor::run(test_cluster(4, builtin_cfg.clone()), &sor_params);
        let s = sor::run(test_cluster(4, oracle_cfg.clone()), &sor_params);
        assert_eq!(
            sor::checksum(&b.result),
            sor::checksum(&s.result),
            "SOR results must be bit-identical under {spec:?}"
        );
        let b = asp::run(test_cluster(4, builtin_cfg), &asp_params);
        let s = asp::run(test_cluster(4, oracle_cfg), &asp_params);
        assert_eq!(
            asp::checksum(&b.result),
            asp::checksum(&s.result),
            "ASP results must be bit-identical under {spec:?}"
        );
        if spec == MigrationPolicy::NoMigration {
            assert_eq!(
                b.report.total_messages(),
                s.report.total_messages(),
                "NoHM message counts are deterministic and must match"
            );
        }
    }
}

/// A ping-pong access trace (two writers alternating bursts of two writes
/// on one object): the hysteresis policy must suffer strictly fewer
/// migrate-backs than the paper's adaptive policy, which chases the burst
/// every time.
#[test]
fn hysteresis_damps_migrate_backs_on_a_ping_pong_trace() {
    let objs = objects(1);
    let mut trace = Vec::new();
    for round in 0..24 {
        let node = 1 + (round % 2);
        for _ in 0..2 {
            trace.push(Step {
                node,
                writes: vec![objs[0]],
                reads: Vec::new(),
            });
        }
    }
    let adaptive = ProtocolConfig::adaptive();
    let hyst = ProtocolConfig::no_migration().with_migration(HysteresisPolicy::default());
    let (_, at_stats, at_bytes) = run_trace(3, adaptive, &objs, &trace);
    let (_, hy_stats, hy_bytes) = run_trace(3, hyst, &objs, &trace);
    assert_eq!(at_bytes, hy_bytes, "policies must not change the data");
    assert!(
        at_stats.policy.migrate_backs > 0,
        "the adaptive policy must ping-pong on this trace (got {})",
        at_stats.policy.migrate_backs
    );
    assert!(
        hy_stats.policy.migrate_backs < at_stats.policy.migrate_backs,
        "hysteresis must suffer strictly fewer migrate-backs ({} vs {})",
        hy_stats.policy.migrate_backs,
        at_stats.policy.migrate_backs
    );
    // Telemetry sanity on both runs: every decision was considered, taken
    // decisions match the observed migrations.
    for stats in [&at_stats, &hy_stats] {
        assert!(stats.policy.decisions_considered >= stats.policy.decisions_migrate);
        assert_eq!(stats.policy.decisions_migrate, stats.migrations_out);
    }
}

/// Per-object policy overrides: one cluster, two objects, two policies. The
/// object overridden to the adaptive policy migrates to its single writer;
/// the object left on the NoMigration default never moves.
#[test]
fn mixed_cluster_runs_different_policies_per_object() {
    let objs = objects(2);
    let config =
        ProtocolConfig::no_migration().with_object_policy(objs[1], MigrationPolicy::adaptive());
    let mut trace = Vec::new();
    for _ in 0..6 {
        trace.push(Step {
            node: 2,
            writes: objs.clone(),
            reads: Vec::new(),
        });
    }
    let harness = Harness::new(4, config, &objs);
    for (i, step) in trace.iter().enumerate() {
        harness.interval(step, i as u8 + 1);
    }
    // Round-robin initial homes: eq.obj[0] on node 0, eq.obj[1] on node 1.
    assert_eq!(
        harness.home_of(objs[0]),
        0,
        "the NoMigration default must pin the un-overridden object"
    );
    assert_eq!(
        harness.home_of(objs[1]),
        2,
        "the adaptive override must migrate its object to the writer"
    );
    let stats = harness.stats();
    assert_eq!(stats.migrations_out, 1);
    assert_eq!(stats.policy.decisions_migrate, 1);
    assert!(stats.policy.decisions_considered > 1);
}

/// Policy telemetry flows through the threaded runtime into the report.
#[test]
fn decision_telemetry_reaches_the_execution_report() {
    let params = sor::SorParams::small(24, 4);
    let run = sor::run(test_cluster(4, ProtocolConfig::adaptive()), &params);
    let telemetry = run.report.policy_telemetry();
    assert!(
        telemetry.decisions_considered > 0,
        "decisions were considered"
    );
    assert_eq!(
        telemetry.decisions_migrate,
        run.report.migrations(),
        "taken decisions are the migrations the report counts"
    );
    assert!(run.report.migration_rate() > 0.0);
    assert!(
        telemetry.threshold_samples > 0 && telemetry.mean_threshold() >= 1.0,
        "the adaptive threshold trajectory is sampled (mean {})",
        telemetry.mean_threshold()
    );
    assert_eq!(run.report.policy_label, "AT");
}
