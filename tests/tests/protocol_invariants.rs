//! Randomized integration tests of the protocol engine driven at the
//! message level (no threads): random schedules of single-writer and
//! multi-writer intervals across a small cluster must never violate the
//! protocol's core invariants:
//!
//! * exactly one node is the home of an object at any time;
//! * forwarding-pointer chains always resolve to the current home within
//!   `num_nodes` hops;
//! * no write is ever lost: after every interval the home copy equals the
//!   writer's view;
//! * the adaptive threshold never drops below its initial value.
//!
//! Schedules are generated from fixed seeds with the workspace's
//! [`SmallRng`], so every failure is reproducible from the case index.

use dsm_core::{
    group_flush_plans, AccessPlan, DiffOutcome, FlushPlan, ObjectRequestOutcome, PolicyInputs,
    ProtocolConfig, ProtocolEngine,
};
use dsm_objspace::{HomeAssignment, NodeId, ObjectId, ObjectRegistry};
use dsm_util::SmallRng;
use std::sync::Arc;

const OBJ_BYTES: usize = 64;
const NODES: usize = 4;

fn registry() -> Arc<ObjectRegistry> {
    let mut r = ObjectRegistry::new();
    r.register_named(
        "prop.obj",
        0,
        OBJ_BYTES,
        NodeId::MASTER,
        HomeAssignment::Master,
    );
    Arc::new(r)
}

fn obj() -> ObjectId {
    ObjectId::derive("prop.obj", 0)
}

fn engines(nodes: usize, config: ProtocolConfig) -> Vec<ProtocolEngine> {
    let reg = registry();
    (0..nodes)
        .map(|i| ProtocolEngine::new(NodeId::from(i), nodes, config.clone(), Arc::clone(&reg)))
        .collect()
}

/// A random writer schedule of `1..=max_len` steps.
fn schedule(rng: &mut SmallRng, max_len: usize) -> Vec<usize> {
    let len = 1 + rng.gen_index(max_len);
    (0..len).map(|_| rng.gen_index(NODES)).collect()
}

/// Run one write interval of `writer`, following redirects, and return the
/// number of redirection hops.
fn write_interval(engines: &mut [ProtocolEngine], writer: usize, value: u8) -> u32 {
    let id = obj();
    engines[writer].begin_interval();
    let mut hops = 0;
    if let AccessPlan::Fetch { mut target } = engines[writer].plan_write(id) {
        loop {
            assert_ne!(
                target,
                engines[writer].node(),
                "engine redirected a request to itself"
            );
            let requester = engines[writer].node();
            match engines[target.index()].handle_object_request(id, requester, true, hops) {
                ObjectRequestOutcome::Reply {
                    data,
                    version,
                    migration,
                    ..
                } => {
                    engines[writer].install_object(id, data, version, migration);
                    break;
                }
                ObjectRequestOutcome::Redirect { hint, epoch } => {
                    engines[writer].note_redirect(id, hint, epoch);
                    hops += 1;
                    assert!(
                        hops <= engines.len() as u32 + 1,
                        "forwarding chain did not converge"
                    );
                    target = hint;
                }
                other => panic!("single-threaded request cannot be deferred: {other:?}"),
            }
        }
        assert_eq!(engines[writer].plan_write(id), AccessPlan::LocalHit);
    }
    engines[writer].with_object_mut(id, |d| d.bytes_mut()[0] = value);
    let plans = engines[writer].prepare_release();
    for plan in plans {
        let mut target = plan.target;
        let mut flush_hops = 0;
        loop {
            let from = engines[writer].node();
            match engines[target.index()].handle_diff(plan.obj, &plan.diff, from, flush_hops) {
                DiffOutcome::Applied { new_version } => {
                    engines[writer].complete_flush(plan.obj, new_version);
                    break;
                }
                DiffOutcome::Redirect { hint, epoch } => {
                    engines[writer].note_redirect(plan.obj, hint, epoch);
                    flush_hops += 1;
                    assert!(flush_hops <= engines.len() as u32 + 1);
                    target = hint;
                }
                other => panic!("single-threaded diff cannot be deferred: {other:?}"),
            }
        }
    }
    engines[writer].finish_release();
    hops
}

fn home_count(engines: &[ProtocolEngine]) -> usize {
    engines.iter().filter(|e| e.is_home(obj())).count()
}

fn home_value(engines: &[ProtocolEngine]) -> u8 {
    engines
        .iter()
        .find_map(|e| e.home_bytes(obj()))
        .expect("some node must be home")[0]
}

/// Under an arbitrary schedule of writers, with every migration policy,
/// there is always exactly one home, redirection chains converge and the
/// last write is never lost.
#[test]
fn random_schedules_preserve_protocol_invariants() {
    let mut rng = SmallRng::seed_from_u64(0x1AB5);
    for case in 0..64 {
        let config = match rng.gen_index(4) {
            0 => ProtocolConfig::no_migration(),
            1 => ProtocolConfig::fixed_threshold(1),
            2 => ProtocolConfig::fixed_threshold(2),
            _ => ProtocolConfig::adaptive(),
        };
        let steps = schedule(&mut rng, 60);
        let mut cluster = engines(NODES, config);
        for (step, &writer) in steps.iter().enumerate() {
            let value = (step % 250) as u8 + 1;
            write_interval(&mut cluster, writer, value);
            assert_eq!(home_count(&cluster), 1, "case {case}: exactly one home");
            assert_eq!(
                home_value(&cluster),
                value,
                "case {case}: the home copy holds the last write"
            );
        }
    }
}

/// The adaptive threshold of the object's current home never drops below the
/// initial threshold, whatever the access history.
#[test]
fn adaptive_threshold_never_below_initial() {
    let mut rng = SmallRng::seed_from_u64(0xADA9);
    let half_peak = ProtocolConfig::adaptive().half_peak_length();
    for case in 0..64 {
        let steps = schedule(&mut rng, 40);
        let mut cluster = engines(NODES, ProtocolConfig::adaptive());
        for (step, &writer) in steps.iter().enumerate() {
            write_interval(&mut cluster, writer, (step % 250) as u8 + 1);
            for engine in &cluster {
                if let Some(state) = engine.migration_state(obj()) {
                    // The threshold the engine's policy reports through the
                    // trait surface (the requester does not enter the
                    // adaptive threshold formula).
                    let t = engine.config().migration.current_threshold(&PolicyInputs {
                        state: &state,
                        requester: engine.node(),
                        for_write: true,
                        object_bytes: OBJ_BYTES as u64,
                        half_peak_len: half_peak,
                    });
                    assert!(
                        t >= 1.0 - 1e-12,
                        "case {case}: threshold dropped below T_init: {t}"
                    );
                }
            }
        }
    }
}

/// Fault `obj` in at `writer` for writing, following redirects.
fn fault_in_for_write(engines: &[ProtocolEngine], writer: usize, obj: ObjectId) {
    if let AccessPlan::Fetch { mut target } = engines[writer].plan_write(obj) {
        let mut hops = 0;
        loop {
            let requester = engines[writer].node();
            match engines[target.index()].handle_object_request(obj, requester, true, hops) {
                ObjectRequestOutcome::Reply {
                    data,
                    version,
                    migration,
                    ..
                } => {
                    engines[writer].install_object(obj, data, version, migration);
                    break;
                }
                ObjectRequestOutcome::Redirect { hint, epoch } => {
                    engines[writer].note_redirect(obj, hint, epoch);
                    hops += 1;
                    assert!(hops <= engines.len() as u32 + 1);
                    target = hint;
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert_eq!(engines[writer].plan_write(obj), AccessPlan::LocalHit);
    }
}

/// Flush one plan individually, following forwarding pointers until
/// applied. `hops` seeds the redirection count (0 for a fresh flush, 1 for
/// the re-plan of a batch entry whose batch-level redirect already counted).
fn flush_individually(engines: &[ProtocolEngine], writer: usize, plan: &FlushPlan, hops: u32) {
    let mut target = plan.target;
    let mut hops = hops;
    loop {
        let from = engines[writer].node();
        match engines[target.index()].handle_diff(plan.obj, &plan.diff, from, hops) {
            DiffOutcome::Applied { new_version } => {
                engines[writer].complete_flush(plan.obj, new_version);
                return;
            }
            DiffOutcome::Redirect { hint, epoch } => {
                engines[writer].note_redirect(plan.obj, hint, epoch);
                hops += 1;
                assert!(hops <= engines.len() as u32 + 2);
                target = hint;
            }
            other => panic!("single-threaded diff cannot be deferred: {other:?}"),
        }
    }
}

/// Release-time flush batching with a home that migrated mid-flight: a
/// writer releases an interval whose flush plans all (staleley) target the
/// initial home, one of the objects having migrated away in between. The
/// batch must resolve per entry — one applied, one redirected — the
/// redirected entry must be re-planned individually under the epoch-guarded
/// redirect rules, and no `complete_flush` ack may be lost
/// (`finish_release` panics on any unacknowledged flush).
#[test]
fn batch_to_migrated_home_replans_redirected_entries_individually() {
    let mut registry = ObjectRegistry::new();
    for i in 0..2u64 {
        registry.register_named(
            "batch.obj",
            i,
            OBJ_BYTES,
            NodeId::MASTER,
            HomeAssignment::Master,
        );
    }
    let registry = Arc::new(registry);
    let engines: Vec<ProtocolEngine> = (0..NODES)
        .map(|i| {
            ProtocolEngine::new(
                NodeId::from(i),
                NODES,
                ProtocolConfig::adaptive(),
                Arc::clone(&registry),
            )
        })
        .collect();
    let stays = ObjectId::derive("batch.obj", 0);
    let moves = ObjectId::derive("batch.obj", 1);

    // Node 1 opens an interval and faults both objects in from node 0, then
    // writes them — but does not release yet.
    engines[1].begin_interval();
    fault_in_for_write(&engines, 1, stays);
    fault_in_for_write(&engines, 1, moves);
    engines[1].with_object_mut(stays, |d| d.bytes_mut()[0] = 11);
    engines[1].with_object_mut(moves, |d| d.bytes_mut()[0] = 22);

    // Mid-flight: node 2 faults `moves` twice, so the adaptive policy
    // migrates its home 0 -> 2 while node 1's release is still pending.
    for _ in 0..2 {
        engines[2].begin_interval();
        fault_in_for_write(&engines, 2, moves);
        engines[2].with_object_mut(moves, |d| d.bytes_mut()[1] = 9);
        for plan in engines[2].prepare_release() {
            flush_individually(&engines, 2, &plan, 0);
        }
        engines[2].finish_release();
    }
    assert!(
        engines[2].is_home(moves),
        "home must have migrated to node 2"
    );
    assert!(engines[0].is_home(stays));

    // Node 1 releases: both plans still target node 0 (its belief is
    // stale), so they group into ONE batch aimed at the old home.
    let plans = engines[1].prepare_release();
    assert_eq!(plans.len(), 2);
    let mut batches = group_flush_plans(plans);
    assert_eq!(batches.len(), 1, "stale beliefs share one (old) home");
    let batch = batches.pop().unwrap();
    assert_eq!(batch.target, NodeId(0));

    // Serve the batch exactly as the protocol server does: per-entry
    // handle_diff at the addressed node.
    let mut redirected = Vec::new();
    for plan in &batch.entries {
        match engines[0].handle_diff(plan.obj, &plan.diff, NodeId(1), 0) {
            DiffOutcome::Applied { new_version } => {
                engines[1].complete_flush(plan.obj, new_version);
            }
            DiffOutcome::Redirect { hint, epoch } => {
                assert_eq!(plan.obj, moves, "only the migrated object redirects");
                assert_eq!(hint, NodeId(2));
                assert!(epoch > 0, "redirect hints carry the home epoch");
                assert!(engines[1].note_redirect(plan.obj, hint, epoch));
                redirected.push(FlushPlan {
                    obj: plan.obj,
                    target: hint,
                    diff: plan.diff.clone(),
                });
            }
            other => panic!("single-threaded diff cannot be deferred: {other:?}"),
        }
    }
    assert_eq!(redirected.len(), 1, "exactly the migrated entry re-plans");
    for plan in &redirected {
        flush_individually(&engines, 1, plan, 1);
    }
    // All acks accounted for: finish_release must not find unflushed dirt.
    engines[1].finish_release();

    // Both writes landed at the *current* homes.
    assert_eq!(engines[0].home_bytes(stays).unwrap()[0], 11);
    assert_eq!(engines[2].home_bytes(moves).unwrap()[0], 22);
    // The stale hint was replaced by the epoch-guarded forward pointer.
    assert_eq!(engines[1].home_hint(moves), NodeId(2));
}

/// The no-migration baseline never moves the home, no matter the schedule.
#[test]
fn no_migration_home_is_stable() {
    let mut rng = SmallRng::seed_from_u64(0x5AFE);
    for case in 0..64 {
        let steps = schedule(&mut rng, 40);
        let mut cluster = engines(NODES, ProtocolConfig::no_migration());
        for (step, &writer) in steps.iter().enumerate() {
            write_interval(&mut cluster, writer, (step % 250) as u8 + 1);
        }
        assert!(
            cluster[0].is_home(obj()),
            "case {case}: NoHM must keep the home on the master"
        );
    }
}
